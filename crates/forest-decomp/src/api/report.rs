//! The report side of the facade: one result shape for every pipeline, plus
//! the [`Validate`] wiring onto the `forest_graph::decomposition` validators.

use super::{Engine, ProblemKind};
use crate::error::FdError;
use forest_graph::decomposition::{
    max_forest_diameter, validate_forest_decomposition, validate_list_coloring,
    validate_star_forest_decomposition,
};
use forest_graph::{ForestDecomposition, GraphView, ListAssignment, Orientation};
use local_model::RoundLedger;
use std::time::Duration;

/// The object a run produced.
#[derive(Clone, Debug, PartialEq)]
pub enum Artifact {
    /// A complete edge coloring whose classes are (star) forests.
    Decomposition(ForestDecomposition),
    /// An edge orientation (Corollary 1.1 output).
    Orientation {
        /// The orientation itself.
        orientation: Orientation,
        /// Its maximum out-degree.
        max_out_degree: usize,
    },
}

impl Artifact {
    /// The decomposition, if this artifact is one.
    pub fn decomposition(&self) -> Option<&ForestDecomposition> {
        match self {
            Artifact::Decomposition(fd) => Some(fd),
            Artifact::Orientation { .. } => None,
        }
    }

    /// The orientation, if this artifact is one.
    pub fn orientation(&self) -> Option<&Orientation> {
        match self {
            Artifact::Decomposition(_) => None,
            Artifact::Orientation { orientation, .. } => Some(orientation),
        }
    }
}

/// Whether the artifact was checked by the validators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValidationStatus {
    /// The run validated the artifact before returning it.
    Validated,
    /// Validation was disabled by the request.
    Skipped,
}

/// Everything a decomposition run reports, uniformly across problems and
/// engines.
///
/// Two runs of the same [`DecompositionRequest`](super::DecompositionRequest)
/// (same seed) on the same graph produce reports whose
/// [`canonical_bytes`](DecompositionReport::canonical_bytes) are identical;
/// only [`wall_clock`](DecompositionReport::wall_clock) varies, which is why
/// the canonical encoding excludes it.
#[derive(Clone, Debug)]
pub struct DecompositionReport {
    /// The problem that was solved.
    pub problem: ProblemKind,
    /// The engine that solved it.
    pub engine: Engine,
    /// The seed this run used.
    pub seed: u64,
    /// Number of edges of the input graph.
    pub num_edges: usize,
    /// The produced artifact.
    pub artifact: Artifact,
    /// Resolved per-edge palettes (list problems only).
    pub lists: Option<ListAssignment>,
    /// The arboricity bound the run was based on.
    pub arboricity: usize,
    /// Number of distinct colors (forests / stars) used, or the number of
    /// forests underlying an orientation.
    pub num_colors: usize,
    /// Maximum tree diameter of the (underlying) decomposition.
    pub max_diameter: usize,
    /// Edges that went through a leftover/recoloring phase.
    pub leftover_edges: usize,
    /// LOCAL round accounting.
    pub ledger: RoundLedger,
    /// Wall-clock time of the run (excluded from the canonical encoding).
    pub wall_clock: Duration,
    /// Whether the artifact was validated.
    pub validation: ValidationStatus,
}

fn push_u64(bytes: &mut Vec<u8>, v: u64) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

fn push_str(bytes: &mut Vec<u8>, s: &str) {
    push_u64(bytes, s.len() as u64);
    bytes.extend_from_slice(s.as_bytes());
}

impl DecompositionReport {
    /// A stable byte encoding of everything the run computed, excluding the
    /// wall-clock time. Byte-identical across runs of the same request (same
    /// seed) on the same graph — the reproducibility contract of the facade.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        push_str(&mut bytes, &self.problem.to_string());
        push_str(&mut bytes, &self.engine.to_string());
        push_u64(&mut bytes, self.seed);
        push_u64(&mut bytes, self.arboricity as u64);
        push_u64(&mut bytes, self.num_colors as u64);
        push_u64(&mut bytes, self.max_diameter as u64);
        push_u64(&mut bytes, self.leftover_edges as u64);
        match &self.artifact {
            Artifact::Decomposition(fd) => {
                bytes.push(0);
                push_u64(&mut bytes, fd.num_edges() as u64);
                for e in 0..fd.num_edges() {
                    push_u64(
                        &mut bytes,
                        fd.color(forest_graph::EdgeId::new(e)).index() as u64,
                    );
                }
            }
            Artifact::Orientation {
                orientation,
                max_out_degree,
            } => {
                bytes.push(1);
                push_u64(&mut bytes, *max_out_degree as u64);
                push_u64(&mut bytes, self.num_edges as u64);
                for e in 0..self.num_edges {
                    push_u64(
                        &mut bytes,
                        orientation.tail(forest_graph::EdgeId::new(e)).index() as u64,
                    );
                }
            }
        }
        match &self.lists {
            None => bytes.push(0),
            Some(lists) => {
                bytes.push(1);
                push_u64(&mut bytes, lists.num_edges() as u64);
                for e in 0..lists.num_edges() {
                    let palette = lists.palette(forest_graph::EdgeId::new(e));
                    push_u64(&mut bytes, palette.len() as u64);
                    for c in palette {
                        push_u64(&mut bytes, c.index() as u64);
                    }
                }
            }
        }
        for charge in self.ledger.charges() {
            push_str(&mut bytes, &charge.label);
            push_u64(&mut bytes, charge.rounds as u64);
        }
        bytes.push(match self.validation {
            ValidationStatus::Validated => 1,
            ValidationStatus::Skipped => 0,
        });
        bytes
    }

    /// Recomputes the maximum tree diameter from the artifact (0 for
    /// orientations, whose trees were already measured before orienting).
    pub fn recompute_max_diameter<G: GraphView>(&self, g: &G) -> usize {
        match &self.artifact {
            Artifact::Decomposition(fd) => max_forest_diameter(g, &fd.to_partial()),
            Artifact::Orientation { .. } => self.max_diameter,
        }
    }
}

/// Artifacts (and reports) that can be checked against the graph they were
/// computed from, using the `forest_graph::decomposition` validators.
pub trait Validate {
    /// Validates the artifact against any topology view; returns the typed
    /// validation failure if it is not what it claims to be.
    fn validate<G: GraphView>(&self, g: &G) -> Result<(), FdError>;
}

impl Validate for DecompositionReport {
    fn validate<G: GraphView>(&self, g: &G) -> Result<(), FdError> {
        if self.num_edges != g.num_edges() {
            return Err(FdError::GraphMismatch {
                expected_edges: self.num_edges,
                actual_edges: g.num_edges(),
            });
        }
        match &self.artifact {
            Artifact::Decomposition(fd) => {
                match self.problem {
                    ProblemKind::StarForest | ProblemKind::ListStarForest => {
                        validate_star_forest_decomposition(g, fd, None)?;
                    }
                    _ => {
                        validate_forest_decomposition(g, fd, Some(self.num_colors))?;
                    }
                }
                if self.problem.is_list() {
                    if let Some(lists) = &self.lists {
                        validate_list_coloring(g, &fd.to_partial(), lists)?;
                    }
                }
                Ok(())
            }
            Artifact::Orientation {
                orientation,
                max_out_degree,
            } => {
                // Check the orientation against the graph itself (every tail
                // must be an endpoint of its edge), not just against the
                // report's own bookkeeping.
                for e in g.edge_ids() {
                    if !g.is_endpoint(e, orientation.tail(e)) {
                        return Err(FdError::InvalidOrientation { edge: e });
                    }
                }
                let recomputed = orientation.max_out_degree(g);
                if recomputed != *max_out_degree {
                    return Err(FdError::NotConverged {
                        phase: format!(
                            "orientation reports max out-degree {max_out_degree} but \
                             recomputation gives {recomputed}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }
}
