//! Out-of-core sharded decomposition: [`Decomposer::run_out_of_core`]
//! decomposes an on-disk CSR file under a configurable memory budget.
//!
//! This is the back half of the out-of-core pipeline
//! (`forest_graph::extsort` builds the file, this module decomposes it) and
//! the paper's locality claim made operational: Harris–Su–Vu forest
//! decomposition is local, so the driver never needs the whole graph
//! resident. The run composes three bounded phases:
//!
//! 1. **Plan.** The file is demand-page mapped
//!    ([`MmapCsr::load_mmap`](forest_graph::MmapCsr)) and split with a
//!    [`ShardPlan`](forest_graph::ShardPlan) — the `O(k)`-resident twin of
//!    `CsrPartition` that cuts in exactly the same places — with `k` either
//!    given or derived from the budget so one shard's working set fits.
//! 2. **Walk.** Shards are decomposed *sequentially* through the same
//!    thaw-free `decompose_shard` path `run_sharded` fans out in parallel:
//!    one shard's CSR is extracted, decomposed, its coloring **spilled to
//!    disk**, and — before everything is dropped — the per-color component
//!    representatives of its *boundary* vertices are recorded (a few words
//!    per boundary endpoint). Per-shard seeds, ledgers and outcomes are
//!    identical to the in-memory run because the extracted shard bytes are.
//! 3. **Stitch.** The boundary edges are stitched with the same two-phase
//!    single-step-augmentation + residue-recoloring rule as `run_sharded`,
//!    but over *sparse* union-finds keyed by the recorded representatives —
//!    `O(boundary)` resident instead of `O(n · colors)`. Connectivity
//!    answers are representation-independent, so the stitch places every
//!    boundary edge on exactly the color the in-memory stitch picks.
//!
//! The returned [`DecompositionReport`] is **byte-identical**
//! ([`canonical_bytes`](DecompositionReport::canonical_bytes)) to
//! `run_sharded` with the same request and shard count — same colors, same
//! ledger charges, same arboricity — pinned by the `oocore` tests. The
//! report itself carries the full per-edge coloring, so materializing it
//! (reading the spilled colorings back) is an `O(m)` step *after* the
//! bounded phases release their working set; [`OocStats`] reports that
//! assembly cost separately from [`OocStats::peak_resident_bytes`], which
//! tracks the driver-allocated working set of the bounded phases (engine
//! scratch is proportional to one shard and rides inside the same budget
//! headroom; mapped file pages are the kernel's to evict and are not heap).

use super::engines::{self, ShardOutcome};
use super::{derive_seed, Decomposer, DecompositionReport, StitchPolicy};
use super::{Artifact, ProblemKind, Validate, ValidationStatus};
use crate::error::FdError;
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{Color, CsrGraph, EdgeId, GraphView, ShardPlan, VertexId};
use forest_obs::{clock::Stopwatch, LazyCounter, LazyGauge, Span};
use local_model::RoundLedger;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Typed mirrors of the [`OocStats`] phase/residency accounting in the
/// `forest-obs` registry. Counters are cumulative across runs; the gauges
/// report the latest run's plan and the high-watermark residency.
static OOC_RUNS: LazyCounter = LazyCounter::new("ooc.runs_total");
static OOC_PLAN_NANOS: LazyCounter = LazyCounter::new("ooc.plan_nanos_total");
static OOC_DECOMPOSE_NANOS: LazyCounter = LazyCounter::new("ooc.decompose_nanos_total");
static OOC_STITCH_NANOS: LazyCounter = LazyCounter::new("ooc.stitch_nanos_total");
static OOC_ASSEMBLE_NANOS: LazyCounter = LazyCounter::new("ooc.assemble_nanos_total");
static OOC_NUM_SHARDS: LazyGauge = LazyGauge::new("ooc.num_shards");
static OOC_BOUNDARY_EDGES: LazyGauge = LazyGauge::new("ooc.boundary_edges");
static OOC_PEAK_RESIDENT: LazyGauge = LazyGauge::new("ooc.peak_resident_bytes");

/// Distinguishes concurrent drivers' spill directories within one process.
static SPILL_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Configuration of one out-of-core run: the memory budget and its knobs.
#[derive(Clone, Debug)]
pub struct OocConfig {
    /// Target ceiling, in bytes, for the driver's resident working set
    /// during the bounded phases (plan, per-shard walk, stitch).
    pub memory_budget_bytes: usize,
    /// Explicit shard count; `None` derives one from the budget so a single
    /// shard's working set fits. Use an explicit count to compare against
    /// `run_sharded` with the same `k`.
    pub num_shards: Option<usize>,
    /// Directory for the coloring spill file; `None` uses a fresh directory
    /// next to the input file.
    pub spill_dir: Option<PathBuf>,
}

impl OocConfig {
    /// A config with the given budget and everything else defaulted.
    pub fn with_budget(memory_budget_bytes: usize) -> Self {
        OocConfig {
            memory_budget_bytes,
            num_shards: None,
            spill_dir: None,
        }
    }

    /// Fixes the shard count instead of deriving it from the budget.
    pub fn num_shards(mut self, k: usize) -> Self {
        self.num_shards = Some(k);
        self
    }

    /// Sets the spill directory.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }
}

/// What one out-of-core run measured: the budget accounting plus per-phase
/// wall clock, the numbers `BENCH_pr8.json` records.
#[derive(Clone, Copy, Debug, Default)]
pub struct OocStats {
    /// Shards the run walked.
    pub num_shards: usize,
    /// The configured budget.
    pub memory_budget_bytes: usize,
    /// Peak driver-tracked resident bytes across the bounded phases (shard
    /// extraction, decomposition outputs, boundary state, stitch).
    pub peak_resident_bytes: usize,
    /// Estimated bytes of the final report materialization (full coloring +
    /// decomposition artifact), incurred after the bounded phases.
    pub report_assembly_bytes: usize,
    /// Size of the input CSR file.
    pub csr_file_bytes: u64,
    /// Whether the file was truly demand-paged (`false` on the portable
    /// eager fallback, where the mapping itself is `O(file)` heap).
    pub demand_paged: bool,
    /// Boundary edges the stitch streamed over.
    pub boundary_edges: usize,
    /// Bytes of per-shard colorings spilled to disk.
    pub spilled_coloring_bytes: u64,
    /// Wall-clock nanoseconds: planning (map + split + boundary scan).
    pub plan_nanos: u64,
    /// Wall-clock nanoseconds: the sequential shard walk.
    pub decompose_nanos: u64,
    /// Wall-clock nanoseconds: the boundary stitch.
    pub stitch_nanos: u64,
    /// Wall-clock nanoseconds: reading spills back and building the report.
    pub assemble_nanos: u64,
}

/// An out-of-core run's result: the (byte-identical-to-`run_sharded`)
/// report plus the run's memory/phase accounting.
#[derive(Clone, Debug)]
pub struct OocOutcome {
    /// The decomposition report, indistinguishable from the in-memory
    /// sharded run's.
    pub report: DecompositionReport,
    /// Budget accounting and phase timings.
    pub stats: OocStats,
}

/// Tracks the driver's allocation high-water mark.
#[derive(Default)]
struct ResidentMeter {
    current: usize,
    peak: usize,
}

impl ResidentMeter {
    fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }
}

/// Union-find over a sparse set of `u32` keys: absent keys are their own
/// roots. Connectivity answers match a dense `UnionFind` over the same
/// unions, which is all the stitch observes — only boundary-endpoint
/// representatives ever enter, so this is `O(touched)` instead of `O(n)`
/// per color.
#[derive(Default)]
struct SparseUf {
    parent: HashMap<u32, u32>,
}

impl SparseUf {
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while let Some(&p) = self.parent.get(&root) {
            root = p;
        }
        // Path compression: point the chain straight at the root.
        let mut cur = x;
        while cur != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn resident_bytes(&self) -> usize {
        // Entry + hash-table overhead, conservatively.
        self.parent.len() * 48
    }
}

/// Derives a shard count whose per-shard working set fits inside two fifths
/// of the budget (the rest covers the plan, boundary state, spill buffers
/// and engine scratch). Per-shard transients: the extracted CSR
/// (`≈ 24m/k + 4n/k` bytes), its edge map and coloring (`8m/k`), and the
/// per-color connectivity (`≈ 16·span·n/k`).
fn shards_for_budget(n: usize, m: usize, budget: usize) -> usize {
    let per_shard_total = 40 * m + 72 * n;
    let avail = (2 * budget / 5).max(1);
    per_shard_total.div_ceil(avail).max(1)
}

fn io_err(context: String) -> FdError {
    FdError::Io { context }
}

/// Writes one `(global edge, color)` pair to the spill stream.
fn spill_pair(w: &mut BufWriter<File>, edge: u32, color: u32) -> io::Result<()> {
    w.write_all(&edge.to_le_bytes())?;
    w.write_all(&color.to_le_bytes())
}

/// Best-effort removal of the spill directory, including on error paths.
struct SpillDirGuard {
    dir: PathBuf,
}

impl Drop for SpillDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Decomposer {
    /// Decomposes the on-disk CSR file at `path` without ever holding the
    /// whole graph resident: demand-paged input, sequential bounded-memory
    /// shard walk with colorings spilled to disk, boundary-only stitch. See
    /// the [module docs](self) for the phase breakdown; the report is
    /// byte-identical to [`run_sharded`](Decomposer::run_sharded) with the
    /// same request and shard count.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::Io`] for I/O failures (loading the file, spilling
    /// colorings), [`FdError::InvalidShardCount`] for an explicit shard
    /// count of 0, [`FdError::ShardingUnsupported`] for problems other than
    /// [`ProblemKind::Forest`], [`FdError::UnsupportedCombination`] for an
    /// engine that cannot solve forests, and propagates per-shard failures.
    pub fn run_out_of_core<P: AsRef<Path>>(
        &self,
        path: P,
        config: &OocConfig,
    ) -> Result<OocOutcome, FdError> {
        let path = path.as_ref();
        let _run_span = Span::enter("ooc.run");
        let start = Stopwatch::start();
        let request = self.request();
        if request.problem != ProblemKind::Forest {
            return Err(FdError::ShardingUnsupported {
                problem: request.problem,
            });
        }
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        if config.num_shards == Some(0) {
            return Err(FdError::InvalidShardCount { requested: 0 });
        }

        let mut stats = OocStats {
            memory_budget_bytes: config.memory_budget_bytes,
            ..OocStats::default()
        };
        let mut meter = ResidentMeter::default();

        // --- phase 1: plan -------------------------------------------------
        let plan_span = Span::enter("ooc.plan");
        let plan_start = Stopwatch::start();
        let mapped = CsrGraph::load_mmap(path)
            .map_err(|err| io_err(format!("loading CSR file {}: {err}", path.display())))?;
        stats.demand_paged = mapped.is_demand_paged();
        stats.csr_file_bytes = std::fs::metadata(path)
            .map_err(|err| io_err(format!("stat of CSR file {}: {err}", path.display())))?
            .len();
        let csr = mapped.view();
        let n = csr.num_vertices();
        let m = csr.num_edges();
        let k = config
            .num_shards
            .unwrap_or_else(|| shards_for_budget(n, m, config.memory_budget_bytes));
        let plan = ShardPlan::new(&mapped, k);
        let k = plan.num_shards();
        stats.num_shards = k;
        meter.alloc(plan.resident_bytes());
        let boundary_list = plan.boundary_edges(&mapped);
        let boundary = boundary_list.len();
        stats.boundary_edges = boundary;
        meter.alloc(boundary_list.len() * std::mem::size_of::<EdgeId>());
        // Boundary endpoints grouped by owning shard: the vertices whose
        // per-color representatives must be recorded before each shard's
        // connectivity is dropped.
        let mut boundary_verts: Vec<Vec<u32>> = vec![Vec::new(); k];
        for &e in &boundary_list {
            let (u, v) = csr.endpoints(e);
            boundary_verts[plan.shard_of(u)].push(u.raw());
            boundary_verts[plan.shard_of(v)].push(v.raw());
        }
        for verts in &mut boundary_verts {
            verts.sort_unstable();
            verts.dedup();
        }
        meter.alloc(boundary_verts.iter().map(|v| 4 * v.len() + 32).sum());
        stats.plan_nanos = plan_start.elapsed_nanos();
        drop(plan_span);
        OOC_PLAN_NANOS.add(stats.plan_nanos);
        OOC_NUM_SHARDS.set(k as u64);
        OOC_BOUNDARY_EDGES.set(boundary as u64);

        // Spill stream for the per-shard colorings.
        let spill_root = config
            .spill_dir
            .clone()
            .or_else(|| path.parent().map(Path::to_path_buf))
            .unwrap_or_else(std::env::temp_dir);
        let spill_dir = spill_root.join(format!(
            "oocore-{}-{}",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&spill_dir)
            .map_err(|err| io_err(format!("creating spill dir {}: {err}", spill_dir.display())))?;
        let _guard = SpillDirGuard {
            dir: spill_dir.clone(),
        };
        let spill_path = spill_dir.join("colors.spill");
        let mut spill = BufWriter::new(File::create(&spill_path).map_err(|err| {
            io_err(format!(
                "creating spill file {}: {err}",
                spill_path.display()
            ))
        })?);

        // --- phase 2: sequential shard walk --------------------------------
        // Mirrors run_sharded_prepared's parallel fan-out: per-shard derived
        // seeds over byte-identical shard CSRs give identical outcomes, and
        // walking in index order reproduces the merge/ledger order.
        let walk_span = Span::enter("ooc.shard_walk");
        let walk_start = Stopwatch::start();
        let mut ledger = RoundLedger::new();
        let mut budget_span = 0usize;
        let mut arboricity = 0usize;
        let mut leftover_edges = 0usize;
        let mut written = 0usize;
        // Boundary vertex → its component representative in each shard color
        // (indices `0..span_s`); colors the shard never cached map to the
        // vertex itself, exactly like the dense stitch's missing-forest arm.
        let mut reps: HashMap<u32, Vec<u32>> = HashMap::new();
        for (s, shard_boundary) in boundary_verts.iter().enumerate().take(k) {
            let _shard_span = Span::enter("ooc.shard");
            let extracted = plan.extract_shard(&mapped, s);
            let shard_n = extracted.csr.num_vertices();
            let shard_m = extracted.csr.num_edges();
            let extracted_bytes =
                4 * ((shard_n + 1) + 6 * shard_m) + 4 * extracted.global_edges.len();
            meter.alloc(extracted_bytes);
            let mut rng = SmallRng::seed_from_u64(derive_seed(request.seed, s as u64));
            let outcome: ShardOutcome =
                engine.decompose_shard(extracted.csr.view(), request, &mut rng)?;
            // Outcome working set: the shard coloring plus the per-color
            // union-finds (estimated; dropped at the end of this iteration).
            let outcome_bytes = 4 * shard_m + 16 * outcome.color_span * shard_n;
            meter.alloc(outcome_bytes);
            for (&global, &color) in extracted
                .global_edges
                .iter()
                .zip(outcome.decomposition.colors())
            {
                spill_pair(&mut spill, global, color.raw())
                    .map_err(|err| io_err(format!("spilling shard {s} coloring: {err}")))?;
                written += 1;
            }
            stats.spilled_coloring_bytes += 8 * extracted.global_edges.len() as u64;
            let mut connectivity = outcome.connectivity;
            for &gv in shard_boundary {
                let local = plan.local_vertex(VertexId::new(gv as usize));
                let per_color: Vec<u32> = (0..outcome.color_span)
                    .map(|c| match connectivity.cached_forest(Color::new(c)) {
                        Some(uf) => {
                            let root = uf.find(local.index());
                            plan.global_vertex(s, VertexId::new(root)).raw()
                        }
                        None => gv,
                    })
                    .collect();
                meter.alloc(48 + 4 * per_color.len());
                reps.insert(gv, per_color);
            }
            budget_span = budget_span.max(outcome.color_span);
            arboricity = arboricity.max(outcome.arboricity);
            leftover_edges += outcome.leftover_edges;
            ledger.absorb(&format!("shard {s}"), outcome.ledger);
            meter.free(extracted_bytes + outcome_bytes);
        }
        spill
            .flush()
            .map_err(|err| io_err(format!("flushing coloring spill: {err}")))?;
        drop(spill);
        stats.decompose_nanos = walk_start.elapsed_nanos();
        drop(walk_span);
        OOC_DECOMPOSE_NANOS.add(stats.decompose_nanos);

        // --- phase 3: boundary stitch --------------------------------------
        // The same two-phase rule as run_sharded_prepared, over sparse
        // union-finds seeded from the recorded representatives. Shard
        // forests are final, so representative lookups are read-only and
        // the stitch forests grow only through the placements below —
        // connectivity answers (hence colors) match the dense stitch.
        let stitch_span = Span::enter("ooc.stitch");
        let stitch_start = Stopwatch::start();
        let mut boundary_colors: Vec<(u32, Color)> = Vec::with_capacity(boundary);
        if boundary > 0 {
            let mut stitch: Vec<SparseUf> = (0..budget_span).map(|_| SparseUf::default()).collect();
            let rep = |reps: &HashMap<u32, Vec<u32>>, c: usize, v: VertexId| -> u32 {
                let v = v.raw();
                if c >= budget_span {
                    return v;
                }
                reps.get(&v)
                    .and_then(|per_color| per_color.get(c))
                    .copied()
                    .unwrap_or(v)
            };
            let place = |stitch: &mut Vec<SparseUf>,
                         reps: &HashMap<u32, Vec<u32>>,
                         e: EdgeId,
                         total: usize|
             -> Option<Color> {
                let (u, v) = csr.endpoints(e);
                for (c, uf) in stitch.iter_mut().enumerate().take(total) {
                    let gu = rep(reps, c, u);
                    let gv = rep(reps, c, v);
                    if gu != gv && !uf.connected(gu, gv) {
                        uf.union(gu, gv);
                        return Some(Color::new(c));
                    }
                }
                None
            };
            let mut stitched_fast = 0usize;
            let mut remaining: Vec<EdgeId> = Vec::new();
            for &e in &boundary_list {
                match place(&mut stitch, &reps, e, budget_span) {
                    Some(c) => {
                        boundary_colors.push((e.raw(), c));
                        written += 1;
                        stitched_fast += 1;
                    }
                    None => remaining.push(e),
                }
            }
            if stitched_fast > 0 {
                ledger.charge(
                    format!(
                        "stitch {stitched_fast} of {boundary} boundary edges into existing \
                         forests (single-step augmentations)"
                    ),
                    stitched_fast,
                );
            }
            if !remaining.is_empty() {
                leftover_edges += remaining.len();
                let mut total_colors = budget_span;
                for &e in &remaining {
                    let c = match place(&mut stitch, &reps, e, total_colors) {
                        Some(c) => c,
                        None => {
                            let fresh = Color::new(total_colors);
                            total_colors += 1;
                            stitch.push(SparseUf::default());
                            let (u, v) = csr.endpoints(e);
                            stitch[fresh.index()].union(u.raw(), v.raw());
                            fresh
                        }
                    };
                    boundary_colors.push((e.raw(), c));
                    written += 1;
                }
                ledger.charge(
                    format!(
                        "stitch leftover ({} residue boundary edges recolored, {} fresh \
                         colors beyond the shard budget)",
                        remaining.len(),
                        total_colors - budget_span
                    ),
                    remaining.len(),
                );
            }
            meter.alloc(
                stitch.iter().map(SparseUf::resident_bytes).sum::<usize>()
                    + 8 * boundary_colors.len(),
            );
        }
        debug_assert_eq!(written, m, "every edge colored exactly once");
        stats.stitch_nanos = stitch_start.elapsed_nanos();
        drop(stitch_span);
        OOC_STITCH_NANOS.add(stats.stitch_nanos);
        stats.peak_resident_bytes = meter.peak;
        OOC_PEAK_RESIDENT.set_max(meter.peak as u64);

        // --- report assembly (after the bounded phases) --------------------
        let assemble_span = Span::enter("ooc.assemble");
        let assemble_start = Stopwatch::start();
        let arboricity = request
            .alpha
            .unwrap_or_else(|| arboricity.max(forest_graph::matroid::arboricity_lower_bound(&csr)));
        let mut colors = vec![Color::new(0); m];
        let mut spill_in = BufReader::new(File::open(&spill_path).map_err(|err| {
            io_err(format!(
                "reopening spill file {}: {err}",
                spill_path.display()
            ))
        })?);
        let mut pair = [0u8; 8];
        loop {
            match read_exact_or_eof(&mut spill_in, &mut pair)
                .map_err(|err| io_err(format!("reading coloring spill: {err}")))?
            {
                false => break,
                true => {
                    let edge = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
                    let color = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
                    colors[edge as usize] = Color::new(color as usize);
                }
            }
        }
        for &(e, c) in &boundary_colors {
            colors[e as usize] = c;
        }
        if request.sharding.stitch == StitchPolicy::ExactAlpha {
            super::exact_alpha_stitch(&csr, &mut colors, arboricity, &mut ledger);
        }
        let decomposition = forest_graph::ForestDecomposition::from_colors(colors);
        let num_colors = decomposition.num_colors_used();
        let max_diameter = max_forest_diameter(&csr, &decomposition.to_partial());
        stats.report_assembly_bytes = 12 * m;
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed: request.seed,
            num_edges: m,
            artifact: Artifact::Decomposition(decomposition),
            lists: None,
            arboricity,
            num_colors,
            max_diameter,
            leftover_edges,
            ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        if request.validate {
            report.validate(&csr)?;
            report.validation = ValidationStatus::Validated;
        }
        stats.assemble_nanos = assemble_start.elapsed_nanos();
        drop(assemble_span);
        OOC_ASSEMBLE_NANOS.add(stats.assemble_nanos);
        OOC_RUNS.inc();
        Ok(OocOutcome { report, stats })
    }
}

/// Reads exactly `buf.len()` bytes, or returns `Ok(false)` at clean EOF;
/// a torn tail is an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let read = r.read(&mut buf[filled..])?;
        if read == 0 {
            break;
        }
        filled += read;
    }
    match filled {
        0 => Ok(false),
        f if f == buf.len() => Ok(true),
        _ => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "torn record in coloring spill",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DecompositionRequest, Engine};
    use forest_graph::generators;
    use rand::rngs::StdRng;

    fn temp_csr(tag: &str, g: &forest_graph::MultiGraph) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "forest-decomp-oocore-{tag}-{}-{}.csr",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        CsrGraph::from_multigraph(g).save(&path).unwrap();
        path
    }

    #[test]
    fn out_of_core_matches_run_sharded_byte_for_byte() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::planted_forest_union(150, 3, &mut rng);
        let path = temp_csr("parity", &g);
        for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_alpha(3)
                    .with_seed(13),
            );
            let sharded = decomposer.run_sharded(&g, 5).unwrap();
            let ooc = decomposer
                .run_out_of_core(&path, &OocConfig::with_budget(1 << 20).num_shards(5))
                .unwrap();
            assert_eq!(
                ooc.report.canonical_bytes(),
                sharded.canonical_bytes(),
                "engine {engine:?}"
            );
            assert_eq!(ooc.stats.num_shards, 5);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_alpha_stitch_parity_holds_out_of_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::planted_forest_union(80, 2, &mut rng);
        let path = temp_csr("exact", &g);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_alpha(2)
                .with_seed(3)
                .with_stitch_policy(StitchPolicy::ExactAlpha),
        );
        let sharded = decomposer.run_sharded(&g, 3).unwrap();
        let ooc = decomposer
            .run_out_of_core(&path, &OocConfig::with_budget(1 << 20).num_shards(3))
            .unwrap();
        assert_eq!(ooc.report.canonical_bytes(), sharded.canonical_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn budget_derived_shard_count_stays_under_budget() {
        // A banded graph: contiguous-id shards cut only O(k) edges, so the
        // boundary state stays tiny and the budget binds the shard walk.
        // (On a random-id graph nearly every edge is boundary and no
        // sharding discipline can keep the stitch state below O(m).)
        let g = generators::fat_path(2000, 4);
        let path = temp_csr("budget", &g);
        let file_bytes = std::fs::metadata(&path).unwrap().len() as usize;
        let budget = file_bytes / 8;
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::HarrisSuVu)
                .with_alpha(4)
                .with_seed(9),
        );
        let ooc = decomposer
            .run_out_of_core(&path, &OocConfig::with_budget(budget))
            .unwrap();
        assert!(ooc.stats.num_shards > 1, "budget must force sharding");
        assert!(
            ooc.stats.peak_resident_bytes <= budget,
            "peak {} exceeds budget {budget}",
            ooc.stats.peak_resident_bytes
        );
        // And the derived-k run still matches run_sharded with the same k.
        let sharded = decomposer.run_sharded(&g, ooc.stats.num_shards).unwrap();
        assert_eq!(ooc.report.canonical_bytes(), sharded.canonical_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_configurations() {
        let g = generators::path(8);
        let path = temp_csr("reject", &g);
        let forest = Decomposer::new(DecompositionRequest::new(ProblemKind::Forest));
        assert!(matches!(
            forest.run_out_of_core(&path, &OocConfig::with_budget(1024).num_shards(0)),
            Err(FdError::InvalidShardCount { requested: 0 })
        ));
        let star = Decomposer::new(DecompositionRequest::new(ProblemKind::StarForest));
        assert!(matches!(
            star.run_out_of_core(&path, &OocConfig::with_budget(1024)),
            Err(FdError::ShardingUnsupported { .. })
        ));
        assert!(matches!(
            forest.run_out_of_core("/definitely/not/a/file.csr", &OocConfig::with_budget(1024)),
            Err(FdError::Io { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
