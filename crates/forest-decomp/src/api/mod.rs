//! The unified `Decomposer` facade: one request/report API over every
//! decomposition pipeline in this crate.
//!
//! The Harris–Su–Vu paper is one family of algorithms, and this module makes
//! it look like one: a [`DecompositionRequest`] says *what* to solve (a
//! [`ProblemKind`]), *how* (an [`Engine`] plus shared knobs) and *under which
//! seed*; a [`Decomposer`] executes it on any [`GraphInput`] and returns one
//! [`DecompositionReport`] shape regardless of pipeline. Every `(problem,
//! engine)` pair either runs or fails with the typed
//! [`FdError::UnsupportedCombination`] — never a panic.
//!
//! # Inputs: the [`GraphInput`] conversion layer
//!
//! Every `run*` entrypoint takes `impl Into<GraphInput>`, so all of these
//! work interchangeably and produce byte-identical reports for the same
//! topology and seed:
//!
//! * `&MultiGraph` / `MultiGraph` — frozen to CSR once per run;
//! * [`&FrozenGraph`](FrozenGraph) / `FrozenGraph` — pre-frozen, zero
//!   conversions on the hot path;
//! * [`GraphInput::from_mmap`] — an on-disk CSR file
//!   ([`MmapCsr`](forest_graph::MmapCsr), versioned little-endian format);
//!   engines run directly over the mapped arrays through a zero-copy
//!   [`CsrRef`](forest_graph::CsrRef);
//! * [`GraphInput::from_shard`] — one shard of a
//!   [`CsrPartition`](forest_graph::CsrPartition).
//!
//! Mmap and shard inputs are CSR-only end to end: every forest and
//! orientation pipeline is `GraphView`-generic, so no adjacency-list twin
//! is ever materialized for them.
//!
//! # Scale: batching and sharding
//!
//! Reproducibility is first-class: a run derives an owned
//! [`SmallRng`](rand::rngs::SmallRng) from the request seed, so the same
//! request on the same graph produces a byte-identical report
//! ([`DecompositionReport::canonical_bytes`]). Batch throughput is
//! first-class too: [`Decomposer::run_batch`] fans one request across many
//! graphs on all cores with per-graph derived seeds ([`derive_seed`]), and
//! [`Decomposer::run_sharded`] decomposes one *large* graph by splitting its
//! frozen topology into zero-copy shards — along an opt-in BFS/RCM locality
//! order ([`ShardingSpec`], [`ReorderKind`]) when vertex ids are not already
//! banded — decomposing them in parallel straight over the borrowed views
//! (no per-shard thaw), and stitching the boundary through single-step
//! augmentations plus a color-reusing residue recoloring (optionally
//! finished by the [`StitchPolicy::ExactAlpha`] exchange pass, which closes
//! the `α + 1` gap on capacity-tight workloads). Repeated sharded
//! runs amortize the split through [`ShardedGraph`] and
//! [`Decomposer::run_sharded_prepared`], exactly like [`FrozenGraph`]
//! amortizes freezing.
//!
//! # Streams: the [`DynamicDecomposer`]
//!
//! Graphs that mutate between queries don't re-freeze: the
//! [`dynamic`] module's [`DynamicDecomposer`] ingests [`EdgeUpdate`]s and
//! keeps a valid forest coloring alive after every update — per-color
//! connectivity riding on `forest_graph`'s Holm–de Lichtenberg–Thorup
//! subsystem, repairs confined to one augmenting exchange, color budget
//! tracking the stream's arboricity in both directions — while
//! [`DynamicDecomposer::snapshot`] reproduces the cold pipeline
//! byte-identically on the surviving edges.
//!
//! ```
//! use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
//! use forest_decomp::api::Validate;
//! use forest_graph::generators;
//!
//! let g = generators::fat_path(64, 3);
//! let request = DecompositionRequest::new(ProblemKind::Forest)
//!     .with_engine(Engine::HarrisSuVu)
//!     .with_epsilon(0.5)
//!     .with_alpha(3)
//!     .with_seed(42);
//! let report = Decomposer::new(request).run(&g)?;
//! assert!(report.num_colors >= 3);
//! report.validate(&g)?;
//! # Ok::<(), forest_decomp::FdError>(())
//! ```

pub mod dynamic;
mod engines;
mod input;
pub mod oocore;
mod report;
mod request;
pub mod versioned;

pub use dynamic::{
    BatchReport, DeltaReport, DynamicDecomposer, DynamicStats, EdgeUpdate, UpdatePath,
};
pub use engines::{DecompositionEngine, EngineOutcome, FrozenInput, ShardOutcome};
pub use input::GraphInput;
pub use oocore::{OocConfig, OocOutcome, OocStats};
pub use report::{Artifact, DecompositionReport, Validate, ValidationStatus};
pub use request::{
    DecompositionRequest, Engine, PaletteSpec, ProblemKind, ShardingSpec, StitchPolicy,
};
pub use versioned::{ArboricityWatermark, ColoringSnapshot, SnapshotReader, VersionedDecomposer};

pub use forest_graph::ReorderKind;

use crate::error::FdError;
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{
    CsrGraph, CsrPartition, CsrRef, GraphView, ListAssignment, MultiGraph, OwnedCsr,
};
use forest_obs::{clock::Stopwatch, LazyCounter, LazyHistogram, Span};
use local_model::RoundLedger;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Facade-level run accounting in the `forest-obs` registry.
static FACADE_RUNS: LazyCounter = LazyCounter::new("facade.runs_total");
static FACADE_RUN_NANOS: LazyHistogram = LazyHistogram::new("facade.run_nanos");

/// A graph frozen for decomposition: the original [`MultiGraph`] paired with
/// its [`CsrGraph`] view, built once and reusable across any number of runs.
///
/// [`Decomposer::run`] freezes internally, so one-off callers never see this
/// type; freeze explicitly (and use [`Decomposer::run_frozen`] /
/// [`Decomposer::run_batch_shared`]) when the same graph is decomposed more
/// than once — repeated requests, seed sweeps, engine comparisons — to pay
/// the `O(n + m)` conversion a single time.
#[derive(Clone, Debug)]
pub struct FrozenGraph {
    graph: MultiGraph,
    csr: CsrGraph,
}

impl FrozenGraph {
    /// Freezes `graph` (one `O(n + m)` CSR construction).
    pub fn freeze(graph: MultiGraph) -> Self {
        let csr = CsrGraph::from_multigraph(&graph);
        FrozenGraph { graph, csr }
    }

    /// The original multigraph.
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The frozen CSR topology.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The borrowed pair handed to engines.
    pub fn input(&self) -> FrozenInput<'_> {
        FrozenInput::new(&self.graph, self.csr.view())
    }
}

impl From<MultiGraph> for FrozenGraph {
    fn from(graph: MultiGraph) -> Self {
        FrozenGraph::freeze(graph)
    }
}

/// A graph split once for repeated sharded decomposition: the
/// [`CsrPartition`] analog of [`FrozenGraph`].
///
/// [`Decomposer::run_sharded`] splits internally, so one-off callers never
/// see this type; split explicitly (and use
/// [`Decomposer::run_sharded_prepared`]) when the same graph is decomposed
/// more than once — repeated requests, seed sweeps, engine comparisons — to
/// pay the `O(n + m)` split (and the optional BFS/RCM reordering pass) a
/// single time, exactly like freezing amortizes the CSR conversion.
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    csr: OwnedCsr,
    partition: CsrPartition,
    reorder: ReorderKind,
}

impl ShardedGraph {
    /// Splits `input` into `num_shards` zero-copy shards along
    /// `spec.reorder` (one `O(n + m)` pass plus the order computation).
    /// Only the reorder half of the spec matters here: the
    /// [`StitchPolicy`] never affects how the graph is cut and is read
    /// from the *request* at run time
    /// ([`Decomposer::run_sharded_prepared`]).
    ///
    /// # Errors
    ///
    /// Returns [`FdError::InvalidShardCount`] for `num_shards == 0`.
    pub fn split<'a>(
        input: impl Into<GraphInput<'a>>,
        num_shards: usize,
        spec: ShardingSpec,
    ) -> Result<ShardedGraph, FdError> {
        if num_shards == 0 {
            return Err(FdError::InvalidShardCount { requested: 0 });
        }
        let input = input.into();
        let mut scratch = None;
        let frozen = input.resolve(&mut scratch);
        let csr = frozen.csr.to_owned_storage();
        let partition = match spec.reorder.order(&csr) {
            None => CsrPartition::split(&csr, num_shards),
            Some(perm) => CsrPartition::split_ordered(&csr, num_shards, &perm),
        };
        Ok(ShardedGraph {
            csr,
            partition,
            reorder: spec.reorder,
        })
    }

    /// The frozen full-graph topology the shards were cut from.
    pub fn csr(&self) -> &OwnedCsr {
        &self.csr
    }

    /// The partition: per-shard zero-copy views plus the boundary list.
    pub fn partition(&self) -> &CsrPartition {
        &self.partition
    }

    /// The locality order the split was cut along.
    pub fn reorder(&self) -> ReorderKind {
        self.reorder
    }

    /// Number of shards (after the splitter's documented clamp).
    pub fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }
}

/// BFS pop bound per overflow-edge exchange in the exact-α stitch: the pass
/// is *bounded* — an exchange that trips the bound leaves its edge on the
/// overflow color instead of stalling the stitch.
const EXACT_STITCH_POP_LIMIT: usize = 4096;

/// The [`StitchPolicy::ExactAlpha`] finishing pass: move every edge colored
/// outside `0..target` back inside the budget through bounded augmenting
/// exchanges, with per-color connectivity riding on the dynamic subsystem
/// ([`DynamicColorConnectivity`](forest_graph::DynamicColorConnectivity))
/// so each recoloring is a cut-and-link edit instead of a cache rebuild.
/// Edges whose exchange fails (a genuinely denser-than-`target` residue, or
/// the pop bound) keep their overflow color — the pass improves, never
/// breaks.
fn exact_alpha_stitch(
    csr: &CsrRef<'_>,
    colors: &mut [forest_graph::Color],
    target: usize,
    ledger: &mut RoundLedger,
) {
    let overflow: Vec<forest_graph::EdgeId> = colors
        .iter()
        .enumerate()
        .filter(|(_, c)| c.index() >= target)
        .map(|(i, _)| forest_graph::EdgeId::new(i))
        .collect();
    let total = overflow.len();
    let (mut moved, mut stuck) = (0usize, 0usize);
    if total > 0 && target > 0 {
        let mut coloring = forest_graph::decomposition::PartialEdgeColoring::from_colors(
            colors.iter().map(|&c| Some(c)).collect(),
        );
        let mut conn = forest_graph::DynamicColorConnectivity::from_coloring(csr, &coloring, None);
        for e in overflow {
            let (u, v) = csr.endpoints(e);
            let old = coloring.color(e).expect("stitched colorings are complete");
            coloring.clear(e);
            conn.remove(e);
            // The cheap query first; the bounded exchange only when every
            // in-budget forest already connects the endpoints.
            if let Some(c) = conn.first_free_color(target, u, v) {
                coloring.set(e, c);
                conn.insert(e, c, u, v);
                moved += 1;
                continue;
            }
            match forest_graph::matroid::try_augment_traced(
                csr,
                &mut coloring,
                e,
                target,
                EXACT_STITCH_POP_LIMIT,
            ) {
                Some(steps) => {
                    for (f, _, new) in steps {
                        let (fu, fv) = csr.endpoints(f);
                        conn.recolor(f, new, fu, fv);
                    }
                    moved += 1;
                }
                None => {
                    coloring.set(e, old);
                    conn.insert(e, old, u, v);
                    stuck += 1;
                }
            }
        }
        for (i, c) in colors.iter_mut().enumerate() {
            *c = coloring
                .color(forest_graph::EdgeId::new(i))
                .expect("exchanges keep the coloring complete");
        }
    }
    // Always charged, so the pass is observable even when the greedy stitch
    // already landed inside the budget.
    ledger.charge(
        format!(
            "exact-alpha stitch: {moved} of {total} overflow edges exchanged into the \
             alpha={target} budget ({stuck} kept an overflow color)"
        ),
        moved,
    );
}

/// Derives the seed used for graph `index` of a batch run with base seed
/// `base`.
///
/// Index 0 maps to `base` itself, so `run_batch(&[g])` is exactly
/// equivalent to `run(&g)`; later indices are mixed through a SplitMix64
/// finalizer so the per-graph streams are independent.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        return base;
    }
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes [`DecompositionRequest`]s: the single entrypoint over every
/// pipeline in this crate.
#[derive(Clone, Debug)]
pub struct Decomposer {
    request: DecompositionRequest,
}

impl Decomposer {
    /// A decomposer executing `request`.
    pub fn new(request: DecompositionRequest) -> Self {
        Decomposer { request }
    }

    /// The request this decomposer executes.
    pub fn request(&self) -> &DecompositionRequest {
        &self.request
    }

    /// Runs the request on any [`GraphInput`] — `&MultiGraph`,
    /// `&FrozenGraph`, [`GraphInput::from_mmap`] /
    /// [`GraphInput::from_shard`] outputs — with the request's own seed.
    ///
    /// The input is frozen at most once (not at all when it arrives frozen),
    /// and identical topologies produce byte-identical reports regardless of
    /// which storage backs them.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::UnsupportedCombination`] for an engine that cannot
    /// solve the requested problem, and propagates every pipeline error;
    /// the facade never panics on any `(problem, engine)` pair.
    pub fn run<'a>(
        &self,
        input: impl Into<GraphInput<'a>>,
    ) -> Result<DecompositionReport, FdError> {
        let input = input.into();
        let mut scratch = None;
        self.run_seeded(input.resolve(&mut scratch), self.request.seed)
    }

    /// Runs the request on an already-frozen graph (no per-run conversion).
    ///
    /// Byte-identical to [`Decomposer::run`] on the underlying multigraph:
    /// freezing is a representation change, not an algorithmic one.
    ///
    /// # Errors
    ///
    /// Same as [`Decomposer::run`].
    pub fn run_frozen(&self, g: &FrozenGraph) -> Result<DecompositionReport, FdError> {
        self.run_seeded(g.input(), self.request.seed)
    }

    /// Runs the request across many graphs in parallel (one rayon task per
    /// graph), graph `i` using [`derive_seed`]`(request.seed, i)`. Results
    /// come back in input order; per-graph failures do not abort the batch.
    /// Each graph is frozen exactly once, inside its own task.
    pub fn run_batch(&self, graphs: &[MultiGraph]) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &MultiGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| {
                let csr = CsrGraph::from_multigraph(g);
                self.run_seeded(
                    FrozenInput::new(g, csr.view()),
                    derive_seed(self.request.seed, *i),
                )
            })
            .collect()
    }

    /// [`Decomposer::run_batch`] over pre-frozen graphs: no conversions at
    /// all on the hot path.
    pub fn run_batch_frozen(
        &self,
        graphs: &[FrozenGraph],
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &FrozenGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| self.run_seeded(g.input(), derive_seed(self.request.seed, *i)))
            .collect()
    }

    /// Fans `runs` executions of the request across all cores, **sharing one
    /// frozen topology**: run `i` uses [`derive_seed`]`(request.seed, i)`.
    /// This is the seed-sweep / same-graph batch shape — the topology is
    /// frozen once for the whole sweep.
    pub fn run_batch_shared(
        &self,
        g: &FrozenGraph,
        runs: usize,
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let seeds: Vec<u64> = (0..runs as u64)
            .map(|i| derive_seed(self.request.seed, i))
            .collect();
        seeds
            .par_iter()
            .map(|&seed| self.run_seeded(g.input(), seed))
            .collect()
    }

    /// Decomposes one *large* graph by sharding it: splits the frozen
    /// topology into `num_shards` zero-copy shards
    /// ([`CsrPartition`](forest_graph::CsrPartition)) — along a
    /// locality-improving BFS/RCM order when the request's [`ShardingSpec`]
    /// asks for one — decomposes every shard's internal edges in parallel
    /// straight over the borrowed `CsrRef` views (no per-shard thaw; shard
    /// `i` seeded with [`derive_seed`]`(seed, i)`), merges the per-shard
    /// forests directly (shards are vertex-disjoint, so same-colored trees
    /// never touch), and stitches the explicit boundary-edge list — the
    /// paper's compose-per-part-partitions-plus-leftover shape.
    ///
    /// Stitching is two phases. Phase 1 is the augmenting search's
    /// single-step fast path (the shared per-color union-find cache): each
    /// boundary edge joins the first existing forest that keeps its
    /// endpoints apart — linear, and almost always successful because
    /// per-shard forests of different shards start out disconnected. Phase 2
    /// rebuilds the connectivity cache and recolors the residue by the same
    /// first-free-forest rule over *all* colors allocated so far — existing
    /// shard colors are retried before a fresh color is opened, and every
    /// fresh color is reused for later residue edges — so the stitch opens
    /// only as many colors beyond the shard budget as the residue's own
    /// density forces (Theorem 4.6-style: the leftover is sparse, so few).
    ///
    /// The returned report carries the per-shard round ledgers (prefixed
    /// `shard i:`) and the stitch charges in one
    /// [`DecompositionReport::ledger`]. `leftover_edges` counts only edges
    /// that actually went through a leftover/recoloring phase: per-shard
    /// leftovers plus the phase-2 residue — boundary edges placed by the
    /// phase-1 fast path are *not* leftovers, so a cleanly stitched run
    /// reports 0. The report's `arboricity` is the caller's bound when the
    /// request fixes one, otherwise a *lower* bound on the global arboricity
    /// (max per-shard value, floored at the Nash-Williams whole-graph
    /// bound) — boundary edges can push the true value higher, and only an
    /// exact full-graph run pins it down.
    ///
    /// Deterministic for a fixed `(request, num_shards)`: the split order is
    /// a deterministic function of the topology, shard seeds are derived,
    /// shards are merged in index order, and the stitch is sequential.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::InvalidShardCount`] for `num_shards == 0`,
    /// [`FdError::ShardingUnsupported`] for problems other than
    /// [`ProblemKind::Forest`] (per-shard star forests / orientations do not
    /// merge safely across boundary recoloring),
    /// [`FdError::UnsupportedCombination`] for an engine that cannot solve
    /// forests, and propagates any per-shard or stitch failure.
    pub fn run_sharded<'a>(
        &self,
        input: impl Into<GraphInput<'a>>,
        num_shards: usize,
    ) -> Result<DecompositionReport, FdError> {
        if self.request.problem != ProblemKind::Forest {
            return Err(FdError::ShardingUnsupported {
                problem: self.request.problem,
            });
        }
        let sharded = ShardedGraph::split(input, num_shards, self.request.sharding)?;
        self.run_sharded_prepared(&sharded)
    }

    /// [`Decomposer::run_sharded`] over a pre-split graph: no split, no
    /// reordering pass, no conversions at all on the hot path — the sharded
    /// analog of [`Decomposer::run_frozen`]. The [`ShardedGraph`]'s own
    /// split (shard count and reorder) is what runs — the request's
    /// `reorder` only applies when `run_sharded` splits internally — while
    /// the [`StitchPolicy`] is a run-time knob that always comes from the
    /// request (it does not affect how the graph was cut).
    ///
    /// # Errors
    ///
    /// Same as [`Decomposer::run_sharded`], minus the shard-count check the
    /// split already performed.
    pub fn run_sharded_prepared(
        &self,
        sharded: &ShardedGraph,
    ) -> Result<DecompositionReport, FdError> {
        let _span = Span::enter("decomp.run_sharded");
        let start = Stopwatch::start();
        let request = &self.request;
        if request.problem != ProblemKind::Forest {
            return Err(FdError::ShardingUnsupported {
                problem: request.problem,
            });
        }
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        let csr = &sharded.csr.view();
        let m = csr.num_edges();
        let partition = &sharded.partition;
        let k = partition.num_shards();
        // Decompose every shard in parallel over zero-copy views — no thaw,
        // no adjacency twin; results come back in shard order, so the merge
        // below is deterministic.
        let shard_ids: Vec<usize> = (0..k).collect();
        let per_shard: Vec<Result<ShardOutcome, FdError>> = shard_ids
            .par_iter()
            .map(|&s| {
                let mut rng = SmallRng::seed_from_u64(derive_seed(request.seed, s as u64));
                engine.decompose_shard(partition.shard(s), request, &mut rng)
            })
            .collect();
        // Merge: shards are vertex-disjoint, so reusing the same color space
        // across shards keeps every class a forest. Colors land straight in
        // the final per-edge array (every edge is written exactly once: the
        // partition covers internal edges shard-by-shard, the stitch covers
        // the boundary). Connectivity is two-level: each shard hands back
        // per-color union-finds over its *local* vertices (built while the
        // shard was cache-hot), and the stitch works over component
        // representatives — two vertices are connected in color `c` iff the
        // stitch forest joins the representatives of their shard-local
        // components — so no whole-graph union pass ever runs here.
        let per_shard = per_shard
            .into_iter()
            .collect::<Result<Vec<ShardOutcome>, FdError>>()?;
        let boundary = partition.boundary_edges().len();
        // The stitch budget must span every color *index* any shard used —
        // HSV colorings leave index gaps, so this is the max color span,
        // not a distinct-color count (gap colors are legal, empty forests).
        let budget = per_shard.iter().map(|o| o.color_span).max().unwrap_or(0);
        let mut colors = vec![forest_graph::Color::new(0); m];
        let mut written = 0usize;
        let mut ledger = RoundLedger::new();
        let mut arboricity = 0usize;
        // Only edges that actually go through a leftover/recoloring phase
        // count: per-shard leftovers now, the phase-2 stitch residue below.
        let mut leftover_edges = 0usize;
        let mut shard_conns = Vec::with_capacity(per_shard.len());
        for (s, outcome) in per_shard.into_iter().enumerate() {
            let fd = outcome.decomposition;
            for (&global, &color) in partition.global_edges(s).iter().zip(fd.colors()) {
                colors[global as usize] = color;
                written += 1;
            }
            shard_conns.push(outcome.connectivity);
            arboricity = arboricity.max(outcome.arboricity);
            leftover_edges += outcome.leftover_edges;
            ledger.absorb(&format!("shard {s}"), outcome.ledger);
        }
        if boundary > 0 {
            let mut stitch = forest_graph::ColorConnectivity::new(csr.num_vertices());
            stitch.prime(budget);
            // The representative of `v`'s component in its shard's color-`c`
            // forest, as a global vertex id (fresh stitch colors have no
            // shard edges, so `v` represents itself).
            let rep = |shard_conns: &mut [forest_graph::ColorConnectivity],
                       c: usize,
                       v: forest_graph::VertexId| {
                if c >= budget {
                    return v;
                }
                let s = partition.shard_of(v);
                match shard_conns[s].cached_forest(forest_graph::Color::new(c)) {
                    Some(uf) => {
                        let root = uf.find(partition.local_vertex(v).index());
                        partition.global_vertex(s, forest_graph::VertexId::new(root))
                    }
                    // A shard that used fewer colors than the budget has no
                    // forest for `c`: every vertex is its own component.
                    None => v,
                }
            };
            // Phase 1: single-step augmentations into the existing shard
            // forests, queried through component representatives.
            let mut stitched_fast = 0usize;
            let mut remaining: Vec<forest_graph::EdgeId> = Vec::new();
            let place = |shard_conns: &mut [forest_graph::ColorConnectivity],
                         stitch: &mut forest_graph::ColorConnectivity,
                         e: forest_graph::EdgeId,
                         total: usize|
             -> Option<forest_graph::Color> {
                let (u, v) = csr.endpoints(e);
                for c in 0..total {
                    let gu = rep(shard_conns, c, u);
                    let gv = rep(shard_conns, c, v);
                    let uf = stitch
                        .cached_forest(forest_graph::Color::new(c))
                        .expect("stitch forests are primed");
                    if gu != gv && !uf.connected(gu.index(), gv.index()) {
                        uf.union(gu.index(), gv.index());
                        return Some(forest_graph::Color::new(c));
                    }
                }
                None
            };
            for &e in partition.boundary_edges() {
                match place(&mut shard_conns, &mut stitch, e, budget) {
                    Some(c) => {
                        colors[e.index()] = c;
                        written += 1;
                        stitched_fast += 1;
                    }
                    None => remaining.push(e),
                }
            }
            if stitched_fast > 0 {
                ledger.charge(
                    format!(
                        "stitch {stitched_fast} of {boundary} boundary edges into existing \
                         forests (single-step augmentations)"
                    ),
                    stitched_fast,
                );
            }
            // Phase 2: the residue. Each residue edge retries every existing
            // color — the shard budget first, then the stitch colors opened
            // so far — and joins the first forest that keeps its endpoints
            // apart, opening a fresh color only when every existing forest
            // connects them. (The two-level connectivity is exact across
            // both phases — shard forests are final and the stitch forests
            // grow only through the placements above — which supersedes the
            // bulk rebuild a lazily-built cache would need before this
            // retry.) Reusing stitch colors across the residue keeps the
            // sharded color count near the shard budget instead of paying a
            // fresh star-forest palette per run.
            if !remaining.is_empty() {
                leftover_edges += remaining.len();
                let mut total_colors = budget;
                for &e in &remaining {
                    let c = match place(&mut shard_conns, &mut stitch, e, total_colors) {
                        Some(c) => c,
                        None => {
                            let fresh = forest_graph::Color::new(total_colors);
                            total_colors += 1;
                            stitch.prime(total_colors);
                            let (u, v) = csr.endpoints(e);
                            stitch
                                .cached_forest(fresh)
                                .expect("freshly primed")
                                .union(u.index(), v.index());
                            fresh
                        }
                    };
                    colors[e.index()] = c;
                    written += 1;
                }
                ledger.charge(
                    format!(
                        "stitch leftover ({} residue boundary edges recolored, {} fresh \
                         colors beyond the shard budget)",
                        remaining.len(),
                        total_colors - budget
                    ),
                    remaining.len(),
                );
            }
        }
        debug_assert_eq!(written, m, "every edge colored exactly once");
        // The per-shard maxima exclude boundary edges, so they can under-shoot
        // the global arboricity (e.g. K4 split in two: each shard sees one
        // edge). Report the caller's bound when given; otherwise at least the
        // Nash-Williams whole-graph lower bound — still a lower bound on the
        // true global alpha, which only an exact full-graph partition could
        // pin down.
        let arboricity = request
            .alpha
            .unwrap_or_else(|| arboricity.max(forest_graph::matroid::arboricity_lower_bound(csr)));
        if request.sharding.stitch == StitchPolicy::ExactAlpha {
            exact_alpha_stitch(csr, &mut colors, arboricity, &mut ledger);
        }
        let decomposition = forest_graph::ForestDecomposition::from_colors(colors);
        let num_colors = decomposition.num_colors_used();
        let max_diameter = max_forest_diameter(csr, &decomposition.to_partial());
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed: request.seed,
            num_edges: m,
            artifact: Artifact::Decomposition(decomposition),
            lists: None,
            arboricity,
            num_colors,
            max_diameter,
            leftover_edges,
            ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        FACADE_RUNS.inc();
        FACADE_RUN_NANOS.observe(start.elapsed_nanos());
        if request.validate {
            report.validate(csr)?;
            report.validation = ValidationStatus::Validated;
        }
        Ok(report)
    }

    fn run_seeded(
        &self,
        input: FrozenInput<'_>,
        seed: u64,
    ) -> Result<DecompositionReport, FdError> {
        let _span = Span::enter("decomp.run");
        let start = Stopwatch::start();
        let request = &self.request;
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let (lists, resolved_alpha) = self.resolve_lists(&input.csr, &mut rng)?;
        // If palette resolution already paid for the exact arboricity, hand
        // the value to the engine instead of letting it recompute it.
        let effective;
        let request = match resolved_alpha {
            Some(alpha) if request.alpha.is_none() => {
                effective = request.clone().with_alpha(alpha);
                &effective
            }
            _ => request,
        };
        let outcome = engine.execute(input, request, lists.as_ref(), &mut rng)?;
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed,
            num_edges: input.csr.num_edges(),
            artifact: outcome.artifact,
            lists,
            arboricity: outcome.arboricity,
            num_colors: outcome.num_colors,
            max_diameter: outcome.max_diameter,
            leftover_edges: outcome.leftover_edges,
            ledger: outcome.ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        FACADE_RUNS.inc();
        FACADE_RUN_NANOS.observe(start.elapsed_nanos());
        if request.validate {
            report.validate(&input.csr)?;
            report.validation = ValidationStatus::Validated;
        }
        Ok(report)
    }

    /// Materializes the palettes for list problems (`None` otherwise). Also
    /// returns the exact arboricity when sizing the auto palettes had to
    /// compute it, so the run can reuse it instead of computing it twice.
    #[allow(clippy::type_complexity)]
    fn resolve_lists(
        &self,
        csr: &CsrRef<'_>,
        rng: &mut SmallRng,
    ) -> Result<(Option<ListAssignment>, Option<usize>), FdError> {
        let request = &self.request;
        if !request.problem.is_list() {
            return Ok((None, None));
        }
        let m = csr.num_edges();
        let mut computed_alpha = None;
        let lists = match &request.palettes {
            PaletteSpec::Auto => {
                let alpha = request.alpha.unwrap_or_else(|| {
                    let exact = forest_graph::matroid::arboricity(csr);
                    computed_alpha = Some(exact.max(1));
                    exact
                });
                let alpha = alpha.max(1);
                match request.problem {
                    ProblemKind::ListForest => ListAssignment::uniform(m, 2 * (alpha + 1)),
                    _ => {
                        let palette = 3 * alpha + 6;
                        ListAssignment::random(m, 2 * palette, palette, rng)
                    }
                }
            }
            PaletteSpec::Uniform { colors } => ListAssignment::uniform(m, *colors),
            PaletteSpec::Random { space, size } => ListAssignment::random(m, *space, *size, rng),
            PaletteSpec::Explicit(lists) => {
                if lists.num_edges() != m {
                    return Err(FdError::GraphMismatch {
                        expected_edges: lists.num_edges(),
                        actual_edges: m,
                    });
                }
                lists.clone()
            }
        };
        Ok((Some(lists), computed_alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(7, 0), 7);
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
        // Stable across calls.
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
    }

    #[test]
    fn same_seed_same_canonical_bytes() {
        let g = generators::fat_path(40, 3);
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_alpha(3)
            .with_seed(99);
        let decomposer = Decomposer::new(request);
        let a = decomposer.run(&g).unwrap();
        let b = decomposer.run(&g).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn batch_index_zero_matches_single_run() {
        let g = generators::grid(6, 6);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(5),
        );
        let single = decomposer.run(&g).unwrap();
        let batch = decomposer.run_batch(std::slice::from_ref(&g));
        let first = batch[0].as_ref().unwrap();
        assert_eq!(single.canonical_bytes(), first.canonical_bytes());
    }

    #[test]
    fn unsupported_combination_is_typed() {
        let g = generators::path(8);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest).with_engine(Engine::Folklore2Alpha),
        );
        match decomposer.run(&g) {
            Err(FdError::UnsupportedCombination { problem, engine }) => {
                assert_eq!(problem, ProblemKind::ListForest);
                assert_eq!(engine, Engine::Folklore2Alpha);
            }
            other => panic!("expected UnsupportedCombination, got {other:?}"),
        }
    }

    #[test]
    fn explicit_palette_length_is_checked() {
        let g = generators::path(8);
        let lists = ListAssignment::uniform(3, 4);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_palettes(PaletteSpec::Explicit(lists)),
        );
        assert!(matches!(
            decomposer.run(&g),
            Err(FdError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn direct_engine_use_without_lists_fails_typed() {
        // The DecompositionEngine trait is the seam future layers plug into;
        // driving it directly without resolved palettes must not panic.
        let g = generators::path(6);
        let frozen = FrozenGraph::freeze(g);
        let request = DecompositionRequest::new(ProblemKind::ListForest);
        let mut rng = SmallRng::seed_from_u64(1);
        let err = engines::engine_for(Engine::HarrisSuVu)
            .execute(frozen.input(), &request, None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FdError::MissingPalettes { .. }));
    }

    #[test]
    fn orientation_validation_checks_endpoints() {
        // Validating an orientation report against a different graph with the
        // same edge count must fail instead of silently passing.
        let g = generators::path(8);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation).with_engine(Engine::ExactMatroid),
        )
        .run(&g)
        .unwrap();
        let mut other = forest_graph::MultiGraph::new(8);
        for _ in 0..7usize {
            // Same edge count, different topology (7 parallel (0,1) edges),
            // so the path's tails are no longer endpoints of their edges.
            other
                .add_edge(
                    forest_graph::VertexId::new(0),
                    forest_graph::VertexId::new(1),
                )
                .unwrap();
        }
        assert!(matches!(
            report.validate(&other),
            Err(FdError::InvalidOrientation { .. })
        ));
    }

    #[test]
    fn run_sharded_produces_a_valid_stitched_forest() {
        let mut rng = <rand::rngs::StdRng as SeedableRng>::seed_from_u64(31);
        let g = forest_graph::generators::planted_forest_union(120, 3, &mut rng);
        for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_alpha(3)
                    .with_seed(7),
            );
            let report = decomposer.run_sharded(&g, 4).unwrap();
            assert_eq!(report.validation, ValidationStatus::Validated);
            report.validate(&g).unwrap();
            assert!(report.num_colors >= 3, "colors: {}", report.num_colors);
            // Per-shard and stitch charges land in one ledger.
            assert!(report
                .ledger
                .charges()
                .iter()
                .any(|c| c.label.starts_with("shard ")));
            assert!(report
                .ledger
                .charges()
                .iter()
                .any(|c| c.label.starts_with("stitch ")));
            // Deterministic: same request + shard count, same bytes.
            let again = decomposer.run_sharded(&g, 4).unwrap();
            assert_eq!(report.canonical_bytes(), again.canonical_bytes());
        }
    }

    #[test]
    fn run_sharded_rejects_unsupported_problems() {
        let g = generators::path(8);
        let decomposer = Decomposer::new(DecompositionRequest::new(ProblemKind::StarForest));
        assert!(matches!(
            decomposer.run_sharded(&g, 2),
            Err(FdError::ShardingUnsupported {
                problem: ProblemKind::StarForest
            })
        ));
    }

    #[test]
    fn run_sharded_single_shard_has_no_boundary() {
        let g = generators::grid(6, 6);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(3),
        );
        let report = decomposer.run_sharded(&g, 1).unwrap();
        assert_eq!(report.leftover_edges, 0);
        report.validate(&g).unwrap();
    }

    #[test]
    fn validation_can_be_skipped() {
        let g = generators::path(12);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .without_validation(),
        )
        .run(&g)
        .unwrap();
        assert_eq!(report.validation, ValidationStatus::Skipped);
        assert_eq!(report.num_colors, 1);
    }
}
