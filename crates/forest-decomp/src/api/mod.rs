//! The unified `Decomposer` facade: one request/report API over every
//! decomposition pipeline in this crate.
//!
//! The Harris–Su–Vu paper is one family of algorithms, and this module makes
//! it look like one: a [`DecompositionRequest`] says *what* to solve (a
//! [`ProblemKind`]), *how* (an [`Engine`] plus shared knobs) and *under which
//! seed*; a [`Decomposer`] executes it on any [`MultiGraph`] and returns one
//! [`DecompositionReport`] shape regardless of pipeline. Every `(problem,
//! engine)` pair either runs or fails with the typed
//! [`FdError::UnsupportedCombination`] — never a panic.
//!
//! Reproducibility is first-class: a run derives an owned
//! [`SmallRng`](rand::rngs::SmallRng) from the request seed, so the same
//! request on the same graph produces a byte-identical report
//! ([`DecompositionReport::canonical_bytes`]). Batch throughput is
//! first-class too: [`Decomposer::run_batch`] fans one request across many
//! graphs on all cores with per-graph derived seeds ([`derive_seed`]).
//!
//! ```
//! use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
//! use forest_decomp::api::Validate;
//! use forest_graph::generators;
//!
//! let g = generators::fat_path(64, 3);
//! let request = DecompositionRequest::new(ProblemKind::Forest)
//!     .with_engine(Engine::HarrisSuVu)
//!     .with_epsilon(0.5)
//!     .with_alpha(3)
//!     .with_seed(42);
//! let report = Decomposer::new(request).run(&g)?;
//! assert!(report.num_colors >= 3);
//! report.validate(&g)?;
//! # Ok::<(), forest_decomp::FdError>(())
//! ```

mod engines;
mod report;
mod request;

pub use engines::{DecompositionEngine, EngineOutcome, FrozenInput};
pub use report::{Artifact, DecompositionReport, Validate, ValidationStatus};
pub use request::{DecompositionRequest, Engine, PaletteSpec, ProblemKind};

use crate::error::FdError;
use forest_graph::{CsrGraph, ListAssignment, MultiGraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// A graph frozen for decomposition: the original [`MultiGraph`] paired with
/// its [`CsrGraph`] view, built once and reusable across any number of runs.
///
/// [`Decomposer::run`] freezes internally, so one-off callers never see this
/// type; freeze explicitly (and use [`Decomposer::run_frozen`] /
/// [`Decomposer::run_batch_shared`]) when the same graph is decomposed more
/// than once — repeated requests, seed sweeps, engine comparisons — to pay
/// the `O(n + m)` conversion a single time.
#[derive(Clone, Debug)]
pub struct FrozenGraph {
    graph: MultiGraph,
    csr: CsrGraph,
}

impl FrozenGraph {
    /// Freezes `graph` (one `O(n + m)` CSR construction).
    pub fn freeze(graph: MultiGraph) -> Self {
        let csr = CsrGraph::from_multigraph(&graph);
        FrozenGraph { graph, csr }
    }

    /// The original multigraph.
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The frozen CSR topology.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The borrowed pair handed to engines.
    pub fn input(&self) -> FrozenInput<'_> {
        FrozenInput {
            graph: &self.graph,
            csr: &self.csr,
        }
    }
}

impl From<MultiGraph> for FrozenGraph {
    fn from(graph: MultiGraph) -> Self {
        FrozenGraph::freeze(graph)
    }
}

/// Derives the seed used for graph `index` of a batch run with base seed
/// `base`.
///
/// Index 0 maps to `base` itself, so `run_batch(&[g])` is exactly
/// equivalent to `run(&g)`; later indices are mixed through a SplitMix64
/// finalizer so the per-graph streams are independent.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        return base;
    }
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes [`DecompositionRequest`]s: the single entrypoint over every
/// pipeline in this crate.
#[derive(Clone, Debug)]
pub struct Decomposer {
    request: DecompositionRequest,
}

impl Decomposer {
    /// A decomposer executing `request`.
    pub fn new(request: DecompositionRequest) -> Self {
        Decomposer { request }
    }

    /// The request this decomposer executes.
    pub fn request(&self) -> &DecompositionRequest {
        &self.request
    }

    /// Runs the request on one graph with the request's own seed.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::UnsupportedCombination`] for an engine that cannot
    /// solve the requested problem, and propagates every pipeline error;
    /// the facade never panics on any `(problem, engine)` pair.
    pub fn run(&self, g: &MultiGraph) -> Result<DecompositionReport, FdError> {
        let csr = CsrGraph::from_multigraph(g);
        self.run_seeded(
            FrozenInput {
                graph: g,
                csr: &csr,
            },
            self.request.seed,
        )
    }

    /// Runs the request on an already-frozen graph (no per-run conversion).
    ///
    /// Byte-identical to [`Decomposer::run`] on the underlying multigraph:
    /// freezing is a representation change, not an algorithmic one.
    ///
    /// # Errors
    ///
    /// Same as [`Decomposer::run`].
    pub fn run_frozen(&self, g: &FrozenGraph) -> Result<DecompositionReport, FdError> {
        self.run_seeded(g.input(), self.request.seed)
    }

    /// Runs the request across many graphs in parallel (one rayon task per
    /// graph), graph `i` using [`derive_seed`]`(request.seed, i)`. Results
    /// come back in input order; per-graph failures do not abort the batch.
    /// Each graph is frozen exactly once, inside its own task.
    pub fn run_batch(&self, graphs: &[MultiGraph]) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &MultiGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| {
                let csr = CsrGraph::from_multigraph(g);
                self.run_seeded(
                    FrozenInput {
                        graph: g,
                        csr: &csr,
                    },
                    derive_seed(self.request.seed, *i),
                )
            })
            .collect()
    }

    /// [`Decomposer::run_batch`] over pre-frozen graphs: no conversions at
    /// all on the hot path.
    pub fn run_batch_frozen(
        &self,
        graphs: &[FrozenGraph],
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &FrozenGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| self.run_seeded(g.input(), derive_seed(self.request.seed, *i)))
            .collect()
    }

    /// Fans `runs` executions of the request across all cores, **sharing one
    /// frozen topology**: run `i` uses [`derive_seed`]`(request.seed, i)`.
    /// This is the seed-sweep / same-graph batch shape — the topology is
    /// frozen once for the whole sweep.
    pub fn run_batch_shared(
        &self,
        g: &FrozenGraph,
        runs: usize,
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let seeds: Vec<u64> = (0..runs as u64)
            .map(|i| derive_seed(self.request.seed, i))
            .collect();
        seeds
            .par_iter()
            .map(|&seed| self.run_seeded(g.input(), seed))
            .collect()
    }

    fn run_seeded(
        &self,
        input: FrozenInput<'_>,
        seed: u64,
    ) -> Result<DecompositionReport, FdError> {
        let start = Instant::now();
        let g = input.graph;
        let request = &self.request;
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let (lists, resolved_alpha) = self.resolve_lists(g, &mut rng)?;
        // If palette resolution already paid for the exact arboricity, hand
        // the value to the engine instead of letting it recompute it.
        let effective;
        let request = match resolved_alpha {
            Some(alpha) if request.alpha.is_none() => {
                effective = request.clone().with_alpha(alpha);
                &effective
            }
            _ => request,
        };
        let outcome = engine.execute(input, request, lists.as_ref(), &mut rng)?;
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed,
            num_edges: g.num_edges(),
            artifact: outcome.artifact,
            lists,
            arboricity: outcome.arboricity,
            num_colors: outcome.num_colors,
            max_diameter: outcome.max_diameter,
            leftover_edges: outcome.leftover_edges,
            ledger: outcome.ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        if request.validate {
            report.validate(g)?;
            report.validation = ValidationStatus::Validated;
        }
        Ok(report)
    }

    /// Materializes the palettes for list problems (`None` otherwise). Also
    /// returns the exact arboricity when sizing the auto palettes had to
    /// compute it, so the run can reuse it instead of computing it twice.
    #[allow(clippy::type_complexity)]
    fn resolve_lists(
        &self,
        g: &MultiGraph,
        rng: &mut SmallRng,
    ) -> Result<(Option<ListAssignment>, Option<usize>), FdError> {
        let request = &self.request;
        if !request.problem.is_list() {
            return Ok((None, None));
        }
        let m = g.num_edges();
        let mut computed_alpha = None;
        let lists = match &request.palettes {
            PaletteSpec::Auto => {
                let alpha = request.alpha.unwrap_or_else(|| {
                    let exact = forest_graph::matroid::arboricity(g);
                    computed_alpha = Some(exact.max(1));
                    exact
                });
                let alpha = alpha.max(1);
                match request.problem {
                    ProblemKind::ListForest => ListAssignment::uniform(m, 2 * (alpha + 1)),
                    _ => {
                        let palette = 3 * alpha + 6;
                        ListAssignment::random(m, 2 * palette, palette, rng)
                    }
                }
            }
            PaletteSpec::Uniform { colors } => ListAssignment::uniform(m, *colors),
            PaletteSpec::Random { space, size } => ListAssignment::random(m, *space, *size, rng),
            PaletteSpec::Explicit(lists) => {
                if lists.num_edges() != m {
                    return Err(FdError::GraphMismatch {
                        expected_edges: lists.num_edges(),
                        actual_edges: m,
                    });
                }
                lists.clone()
            }
        };
        Ok((Some(lists), computed_alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(7, 0), 7);
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
        // Stable across calls.
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
    }

    #[test]
    fn same_seed_same_canonical_bytes() {
        let g = generators::fat_path(40, 3);
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_alpha(3)
            .with_seed(99);
        let decomposer = Decomposer::new(request);
        let a = decomposer.run(&g).unwrap();
        let b = decomposer.run(&g).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn batch_index_zero_matches_single_run() {
        let g = generators::grid(6, 6);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(5),
        );
        let single = decomposer.run(&g).unwrap();
        let batch = decomposer.run_batch(std::slice::from_ref(&g));
        let first = batch[0].as_ref().unwrap();
        assert_eq!(single.canonical_bytes(), first.canonical_bytes());
    }

    #[test]
    fn unsupported_combination_is_typed() {
        let g = generators::path(8);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest).with_engine(Engine::Folklore2Alpha),
        );
        match decomposer.run(&g) {
            Err(FdError::UnsupportedCombination { problem, engine }) => {
                assert_eq!(problem, ProblemKind::ListForest);
                assert_eq!(engine, Engine::Folklore2Alpha);
            }
            other => panic!("expected UnsupportedCombination, got {other:?}"),
        }
    }

    #[test]
    fn explicit_palette_length_is_checked() {
        let g = generators::path(8);
        let lists = ListAssignment::uniform(3, 4);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_palettes(PaletteSpec::Explicit(lists)),
        );
        assert!(matches!(
            decomposer.run(&g),
            Err(FdError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn direct_engine_use_without_lists_fails_typed() {
        // The DecompositionEngine trait is the seam future layers plug into;
        // driving it directly without resolved palettes must not panic.
        let g = generators::path(6);
        let frozen = FrozenGraph::freeze(g);
        let request = DecompositionRequest::new(ProblemKind::ListForest);
        let mut rng = SmallRng::seed_from_u64(1);
        let err = engines::engine_for(Engine::HarrisSuVu)
            .execute(frozen.input(), &request, None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FdError::MissingPalettes { .. }));
    }

    #[test]
    fn orientation_validation_checks_endpoints() {
        // Validating an orientation report against a different graph with the
        // same edge count must fail instead of silently passing.
        let g = generators::path(8);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation).with_engine(Engine::ExactMatroid),
        )
        .run(&g)
        .unwrap();
        let mut other = forest_graph::MultiGraph::new(8);
        for _ in 0..7usize {
            // Same edge count, different topology (7 parallel (0,1) edges),
            // so the path's tails are no longer endpoints of their edges.
            other
                .add_edge(
                    forest_graph::VertexId::new(0),
                    forest_graph::VertexId::new(1),
                )
                .unwrap();
        }
        assert!(matches!(
            report.validate(&other),
            Err(FdError::InvalidOrientation { .. })
        ));
    }

    #[test]
    fn validation_can_be_skipped() {
        let g = generators::path(12);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .without_validation(),
        )
        .run(&g)
        .unwrap();
        assert_eq!(report.validation, ValidationStatus::Skipped);
        assert_eq!(report.num_colors, 1);
    }
}
