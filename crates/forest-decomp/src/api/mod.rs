//! The unified `Decomposer` facade: one request/report API over every
//! decomposition pipeline in this crate.
//!
//! The Harris–Su–Vu paper is one family of algorithms, and this module makes
//! it look like one: a [`DecompositionRequest`] says *what* to solve (a
//! [`ProblemKind`]), *how* (an [`Engine`] plus shared knobs) and *under which
//! seed*; a [`Decomposer`] executes it on any [`GraphInput`] and returns one
//! [`DecompositionReport`] shape regardless of pipeline. Every `(problem,
//! engine)` pair either runs or fails with the typed
//! [`FdError::UnsupportedCombination`] — never a panic.
//!
//! # Inputs: the [`GraphInput`] conversion layer
//!
//! Every `run*` entrypoint takes `impl Into<GraphInput>`, so all of these
//! work interchangeably and produce byte-identical reports for the same
//! topology and seed:
//!
//! * `&MultiGraph` / `MultiGraph` — frozen to CSR once per run;
//! * [`&FrozenGraph`](FrozenGraph) / `FrozenGraph` — pre-frozen, zero
//!   conversions on the hot path;
//! * [`GraphInput::from_mmap`] — an on-disk CSR file
//!   ([`MmapCsr`](forest_graph::MmapCsr), versioned little-endian format);
//!   engines run directly over the mapped arrays through a zero-copy
//!   [`CsrRef`](forest_graph::CsrRef);
//! * [`GraphInput::from_shard`] — one shard of a
//!   [`CsrPartition`](forest_graph::CsrPartition).
//!
//! # Scale: batching and sharding
//!
//! Reproducibility is first-class: a run derives an owned
//! [`SmallRng`](rand::rngs::SmallRng) from the request seed, so the same
//! request on the same graph produces a byte-identical report
//! ([`DecompositionReport::canonical_bytes`]). Batch throughput is
//! first-class too: [`Decomposer::run_batch`] fans one request across many
//! graphs on all cores with per-graph derived seeds ([`derive_seed`]), and
//! [`Decomposer::run_sharded`] decomposes one *large* graph by splitting its
//! frozen topology into zero-copy shards, decomposing them in parallel, and
//! stitching the boundary edges through the leftover/augmenting machinery.
//!
//! ```
//! use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
//! use forest_decomp::api::Validate;
//! use forest_graph::generators;
//!
//! let g = generators::fat_path(64, 3);
//! let request = DecompositionRequest::new(ProblemKind::Forest)
//!     .with_engine(Engine::HarrisSuVu)
//!     .with_epsilon(0.5)
//!     .with_alpha(3)
//!     .with_seed(42);
//! let report = Decomposer::new(request).run(&g)?;
//! assert!(report.num_colors >= 3);
//! report.validate(&g)?;
//! # Ok::<(), forest_decomp::FdError>(())
//! ```

mod engines;
mod input;
mod report;
mod request;

pub use engines::{DecompositionEngine, EngineOutcome, FrozenInput};
pub use input::{GraphInput, MmapInput};
pub use report::{Artifact, DecompositionReport, Validate, ValidationStatus};
pub use request::{DecompositionRequest, Engine, PaletteSpec, ProblemKind};

use crate::error::FdError;
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{CsrGraph, CsrPartition, ListAssignment, MultiGraph};
use local_model::RoundLedger;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// A graph frozen for decomposition: the original [`MultiGraph`] paired with
/// its [`CsrGraph`] view, built once and reusable across any number of runs.
///
/// [`Decomposer::run`] freezes internally, so one-off callers never see this
/// type; freeze explicitly (and use [`Decomposer::run_frozen`] /
/// [`Decomposer::run_batch_shared`]) when the same graph is decomposed more
/// than once — repeated requests, seed sweeps, engine comparisons — to pay
/// the `O(n + m)` conversion a single time.
#[derive(Clone, Debug)]
pub struct FrozenGraph {
    graph: MultiGraph,
    csr: CsrGraph,
}

impl FrozenGraph {
    /// Freezes `graph` (one `O(n + m)` CSR construction).
    pub fn freeze(graph: MultiGraph) -> Self {
        let csr = CsrGraph::from_multigraph(&graph);
        FrozenGraph { graph, csr }
    }

    /// Pairs a graph with a CSR that is already known to be its freeze
    /// (memcpy instead of a second `O(n + m)` conversion). Debug-checked.
    pub(super) fn from_parts(graph: MultiGraph, csr: CsrGraph) -> Self {
        debug_assert_eq!(csr, CsrGraph::from_multigraph(&graph));
        FrozenGraph { graph, csr }
    }

    /// The original multigraph.
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The frozen CSR topology.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The borrowed pair handed to engines.
    pub fn input(&self) -> FrozenInput<'_> {
        FrozenInput {
            graph: &self.graph,
            csr: self.csr.view(),
        }
    }
}

impl From<MultiGraph> for FrozenGraph {
    fn from(graph: MultiGraph) -> Self {
        FrozenGraph::freeze(graph)
    }
}

/// Derives the seed used for graph `index` of a batch run with base seed
/// `base`.
///
/// Index 0 maps to `base` itself, so `run_batch(&[g])` is exactly
/// equivalent to `run(&g)`; later indices are mixed through a SplitMix64
/// finalizer so the per-graph streams are independent.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        return base;
    }
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes [`DecompositionRequest`]s: the single entrypoint over every
/// pipeline in this crate.
#[derive(Clone, Debug)]
pub struct Decomposer {
    request: DecompositionRequest,
}

impl Decomposer {
    /// A decomposer executing `request`.
    pub fn new(request: DecompositionRequest) -> Self {
        Decomposer { request }
    }

    /// The request this decomposer executes.
    pub fn request(&self) -> &DecompositionRequest {
        &self.request
    }

    /// Runs the request on any [`GraphInput`] — `&MultiGraph`,
    /// `&FrozenGraph`, [`GraphInput::from_mmap`] /
    /// [`GraphInput::from_shard`] outputs — with the request's own seed.
    ///
    /// The input is frozen at most once (not at all when it arrives frozen),
    /// and identical topologies produce byte-identical reports regardless of
    /// which storage backs them.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::UnsupportedCombination`] for an engine that cannot
    /// solve the requested problem, and propagates every pipeline error;
    /// the facade never panics on any `(problem, engine)` pair.
    pub fn run<'a>(
        &self,
        input: impl Into<GraphInput<'a>>,
    ) -> Result<DecompositionReport, FdError> {
        let input = input.into();
        let mut scratch = None;
        self.run_seeded(input.resolve(&mut scratch), self.request.seed)
    }

    /// Runs the request on an already-frozen graph (no per-run conversion).
    ///
    /// Byte-identical to [`Decomposer::run`] on the underlying multigraph:
    /// freezing is a representation change, not an algorithmic one.
    ///
    /// # Errors
    ///
    /// Same as [`Decomposer::run`].
    pub fn run_frozen(&self, g: &FrozenGraph) -> Result<DecompositionReport, FdError> {
        self.run_seeded(g.input(), self.request.seed)
    }

    /// Runs the request across many graphs in parallel (one rayon task per
    /// graph), graph `i` using [`derive_seed`]`(request.seed, i)`. Results
    /// come back in input order; per-graph failures do not abort the batch.
    /// Each graph is frozen exactly once, inside its own task.
    pub fn run_batch(&self, graphs: &[MultiGraph]) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &MultiGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| {
                let csr = CsrGraph::from_multigraph(g);
                self.run_seeded(
                    FrozenInput {
                        graph: g,
                        csr: csr.view(),
                    },
                    derive_seed(self.request.seed, *i),
                )
            })
            .collect()
    }

    /// [`Decomposer::run_batch`] over pre-frozen graphs: no conversions at
    /// all on the hot path.
    pub fn run_batch_frozen(
        &self,
        graphs: &[FrozenGraph],
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let indexed: Vec<(u64, &FrozenGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64, g))
            .collect();
        indexed
            .par_iter()
            .map(|(i, g)| self.run_seeded(g.input(), derive_seed(self.request.seed, *i)))
            .collect()
    }

    /// Fans `runs` executions of the request across all cores, **sharing one
    /// frozen topology**: run `i` uses [`derive_seed`]`(request.seed, i)`.
    /// This is the seed-sweep / same-graph batch shape — the topology is
    /// frozen once for the whole sweep.
    pub fn run_batch_shared(
        &self,
        g: &FrozenGraph,
        runs: usize,
    ) -> Vec<Result<DecompositionReport, FdError>> {
        let seeds: Vec<u64> = (0..runs as u64)
            .map(|i| derive_seed(self.request.seed, i))
            .collect();
        seeds
            .par_iter()
            .map(|&seed| self.run_seeded(g.input(), seed))
            .collect()
    }

    /// Decomposes one *large* graph by sharding it: splits the frozen
    /// topology into `num_shards` zero-copy shards
    /// ([`CsrPartition`](forest_graph::CsrPartition)), decomposes every
    /// shard's internal edges in parallel (shard `i` seeded with
    /// [`derive_seed`]`(seed, i)`), merges the per-shard forests directly
    /// (shards are vertex-disjoint, so same-colored trees never touch), and
    /// recolors the explicit boundary-edge list through the augmenting
    /// machinery — the paper's compose-per-part-partitions-plus-leftover
    /// shape. The returned report carries the per-shard round ledgers
    /// (prefixed `shard i:`) and the stitch charge in one
    /// [`DecompositionReport::ledger`]; `leftover_edges` counts the boundary
    /// edges plus any per-shard leftovers. The report's `arboricity` is the
    /// caller's bound when the request fixes one, otherwise a *lower* bound
    /// on the global arboricity (max per-shard value, floored at the
    /// Nash-Williams whole-graph bound) — boundary edges can push the true
    /// value higher, and only an exact full-graph run pins it down.
    ///
    /// Deterministic for a fixed `(request, num_shards)`: shard seeds are
    /// derived, shards are merged in index order, and the stitch is
    /// sequential.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::ShardingUnsupported`] for problems other than
    /// [`ProblemKind::Forest`] (per-shard star forests / orientations do not
    /// merge safely across boundary recoloring),
    /// [`FdError::UnsupportedCombination`] for an engine that cannot solve
    /// forests, and propagates any per-shard or stitch failure.
    pub fn run_sharded<'a>(
        &self,
        input: impl Into<GraphInput<'a>>,
        num_shards: usize,
    ) -> Result<DecompositionReport, FdError> {
        let start = Instant::now();
        let input = input.into();
        let request = &self.request;
        if request.problem != ProblemKind::Forest {
            return Err(FdError::ShardingUnsupported {
                problem: request.problem,
            });
        }
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        let mut scratch = None;
        let frozen = input.resolve(&mut scratch);
        let g = frozen.graph;
        let m = g.num_edges();
        let partition = CsrPartition::split(&frozen.csr, num_shards);
        let k = partition.num_shards();
        // Decompose every shard in parallel over zero-copy views; results
        // come back in shard order, so the merge below is deterministic.
        let shard_ids: Vec<usize> = (0..k).collect();
        let per_shard: Vec<Result<EngineOutcome, FdError>> = shard_ids
            .par_iter()
            .map(|&s| {
                let shard_graph = partition.shard(s).to_multigraph();
                let shard_input = FrozenInput {
                    graph: &shard_graph,
                    csr: partition.shard(s),
                };
                let mut rng = SmallRng::seed_from_u64(derive_seed(request.seed, s as u64));
                engine.execute(shard_input, request, None, &mut rng)
            })
            .collect();
        // Merge: shards are vertex-disjoint, so reusing the same color space
        // across shards keeps every class a forest.
        let mut coloring = forest_graph::decomposition::PartialEdgeColoring::new_uncolored(m);
        let mut ledger = RoundLedger::new();
        let mut shard_colors = 0usize;
        let mut arboricity = 0usize;
        let boundary = partition.boundary_edges().len();
        let mut leftover_edges = boundary;
        for (s, result) in per_shard.into_iter().enumerate() {
            let outcome = result?;
            let fd = match outcome.artifact {
                Artifact::Decomposition(fd) => fd,
                Artifact::Orientation { .. } => {
                    unreachable!("forest requests produce decompositions")
                }
            };
            for local in 0..fd.num_edges() {
                let local_edge = forest_graph::EdgeId::new(local);
                coloring.set(partition.global_edge(s, local_edge), fd.color(local_edge));
            }
            shard_colors = shard_colors.max(outcome.num_colors);
            arboricity = arboricity.max(outcome.arboricity);
            leftover_edges += outcome.leftover_edges;
            ledger.absorb(&format!("shard {s}"), outcome.ledger);
        }
        // Stitch the boundary through the leftover/augmenting machinery.
        // Phase 1 is the augmenting search's single-step fast path (the
        // shared per-color union-find cache): each boundary edge joins the
        // first existing forest that keeps its endpoints apart — linear, and
        // initially almost always successful because per-shard forests of
        // different shards are disconnected. Phase 2 recolors whatever
        // remains exactly like Theorem 4.6 recolors the CUT leftover: star
        // forests with fresh colors via the H-partition toolbox.
        if boundary > 0 {
            let mut conn = forest_graph::ColorConnectivity::new(g.num_vertices());
            let budget = shard_colors;
            let mut stitched_fast = 0usize;
            let mut remaining: Vec<forest_graph::EdgeId> = Vec::new();
            for &e in partition.boundary_edges() {
                let (u, v) = g.endpoints(e);
                match conn.first_free_color(&frozen.csr, &coloring, None, budget, u, v) {
                    Some(c) => {
                        coloring.set(e, c);
                        conn.insert(c, u, v);
                        stitched_fast += 1;
                    }
                    None => remaining.push(e),
                }
            }
            if stitched_fast > 0 {
                ledger.charge(
                    format!(
                        "stitch {stitched_fast} of {boundary} boundary edges into existing \
                         forests (single-step augmentations)"
                    ),
                    stitched_fast,
                );
            }
            if !remaining.is_empty() {
                let mask = crate::cut::dense_mask(m, remaining.iter().copied());
                let (sub, back) = g.edge_subgraph(|e| mask[e.index()]);
                let pseudo = forest_graph::orientation::pseudoarboricity(&sub).max(1);
                let mut stitch_ledger = RoundLedger::new();
                let hp = crate::hpartition::h_partition(&sub, 0.5, pseudo, &mut stitch_ledger)?;
                let sub_orientation = crate::hpartition::acyclic_orientation(&sub, &hp);
                let sfd = crate::hpartition::star_forest_decomposition(
                    &sub,
                    &sub_orientation,
                    &mut stitch_ledger,
                );
                for (i, &orig) in back.iter().enumerate() {
                    coloring.set(
                        orig,
                        forest_graph::Color::new(
                            budget + sfd.color(forest_graph::EdgeId::new(i)).index(),
                        ),
                    );
                }
                ledger.absorb(
                    &format!(
                        "stitch leftover ({} boundary edges recolored as star forests)",
                        remaining.len()
                    ),
                    stitch_ledger,
                );
            }
        }
        let decomposition = coloring.into_complete()?;
        let num_colors = decomposition.num_colors_used();
        let max_diameter = max_forest_diameter(&frozen.csr, &decomposition.to_partial());
        // The per-shard maxima exclude boundary edges, so they can under-shoot
        // the global arboricity (e.g. K4 split in two: each shard sees one
        // edge). Report the caller's bound when given; otherwise at least the
        // Nash-Williams whole-graph lower bound — still a lower bound on the
        // true global alpha, which only an exact full-graph partition could
        // pin down.
        let arboricity = request
            .alpha
            .unwrap_or_else(|| arboricity.max(forest_graph::matroid::arboricity_lower_bound(g)));
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed: request.seed,
            num_edges: m,
            artifact: Artifact::Decomposition(decomposition),
            lists: None,
            arboricity,
            num_colors,
            max_diameter,
            leftover_edges,
            ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        if request.validate {
            report.validate(g)?;
            report.validation = ValidationStatus::Validated;
        }
        Ok(report)
    }

    fn run_seeded(
        &self,
        input: FrozenInput<'_>,
        seed: u64,
    ) -> Result<DecompositionReport, FdError> {
        let start = Instant::now();
        let g = input.graph;
        let request = &self.request;
        let engine = engines::engine_for(request.engine);
        if !engine.supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let (lists, resolved_alpha) = self.resolve_lists(g, &mut rng)?;
        // If palette resolution already paid for the exact arboricity, hand
        // the value to the engine instead of letting it recompute it.
        let effective;
        let request = match resolved_alpha {
            Some(alpha) if request.alpha.is_none() => {
                effective = request.clone().with_alpha(alpha);
                &effective
            }
            _ => request,
        };
        let outcome = engine.execute(input, request, lists.as_ref(), &mut rng)?;
        let mut report = DecompositionReport {
            problem: request.problem,
            engine: request.engine,
            seed,
            num_edges: g.num_edges(),
            artifact: outcome.artifact,
            lists,
            arboricity: outcome.arboricity,
            num_colors: outcome.num_colors,
            max_diameter: outcome.max_diameter,
            leftover_edges: outcome.leftover_edges,
            ledger: outcome.ledger,
            wall_clock: start.elapsed(),
            validation: ValidationStatus::Skipped,
        };
        if request.validate {
            report.validate(g)?;
            report.validation = ValidationStatus::Validated;
        }
        Ok(report)
    }

    /// Materializes the palettes for list problems (`None` otherwise). Also
    /// returns the exact arboricity when sizing the auto palettes had to
    /// compute it, so the run can reuse it instead of computing it twice.
    #[allow(clippy::type_complexity)]
    fn resolve_lists(
        &self,
        g: &MultiGraph,
        rng: &mut SmallRng,
    ) -> Result<(Option<ListAssignment>, Option<usize>), FdError> {
        let request = &self.request;
        if !request.problem.is_list() {
            return Ok((None, None));
        }
        let m = g.num_edges();
        let mut computed_alpha = None;
        let lists = match &request.palettes {
            PaletteSpec::Auto => {
                let alpha = request.alpha.unwrap_or_else(|| {
                    let exact = forest_graph::matroid::arboricity(g);
                    computed_alpha = Some(exact.max(1));
                    exact
                });
                let alpha = alpha.max(1);
                match request.problem {
                    ProblemKind::ListForest => ListAssignment::uniform(m, 2 * (alpha + 1)),
                    _ => {
                        let palette = 3 * alpha + 6;
                        ListAssignment::random(m, 2 * palette, palette, rng)
                    }
                }
            }
            PaletteSpec::Uniform { colors } => ListAssignment::uniform(m, *colors),
            PaletteSpec::Random { space, size } => ListAssignment::random(m, *space, *size, rng),
            PaletteSpec::Explicit(lists) => {
                if lists.num_edges() != m {
                    return Err(FdError::GraphMismatch {
                        expected_edges: lists.num_edges(),
                        actual_edges: m,
                    });
                }
                lists.clone()
            }
        };
        Ok((Some(lists), computed_alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(7, 0), 7);
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
        // Stable across calls.
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
    }

    #[test]
    fn same_seed_same_canonical_bytes() {
        let g = generators::fat_path(40, 3);
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_alpha(3)
            .with_seed(99);
        let decomposer = Decomposer::new(request);
        let a = decomposer.run(&g).unwrap();
        let b = decomposer.run(&g).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn batch_index_zero_matches_single_run() {
        let g = generators::grid(6, 6);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(5),
        );
        let single = decomposer.run(&g).unwrap();
        let batch = decomposer.run_batch(std::slice::from_ref(&g));
        let first = batch[0].as_ref().unwrap();
        assert_eq!(single.canonical_bytes(), first.canonical_bytes());
    }

    #[test]
    fn unsupported_combination_is_typed() {
        let g = generators::path(8);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest).with_engine(Engine::Folklore2Alpha),
        );
        match decomposer.run(&g) {
            Err(FdError::UnsupportedCombination { problem, engine }) => {
                assert_eq!(problem, ProblemKind::ListForest);
                assert_eq!(engine, Engine::Folklore2Alpha);
            }
            other => panic!("expected UnsupportedCombination, got {other:?}"),
        }
    }

    #[test]
    fn explicit_palette_length_is_checked() {
        let g = generators::path(8);
        let lists = ListAssignment::uniform(3, 4);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_palettes(PaletteSpec::Explicit(lists)),
        );
        assert!(matches!(
            decomposer.run(&g),
            Err(FdError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn direct_engine_use_without_lists_fails_typed() {
        // The DecompositionEngine trait is the seam future layers plug into;
        // driving it directly without resolved palettes must not panic.
        let g = generators::path(6);
        let frozen = FrozenGraph::freeze(g);
        let request = DecompositionRequest::new(ProblemKind::ListForest);
        let mut rng = SmallRng::seed_from_u64(1);
        let err = engines::engine_for(Engine::HarrisSuVu)
            .execute(frozen.input(), &request, None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FdError::MissingPalettes { .. }));
    }

    #[test]
    fn orientation_validation_checks_endpoints() {
        // Validating an orientation report against a different graph with the
        // same edge count must fail instead of silently passing.
        let g = generators::path(8);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation).with_engine(Engine::ExactMatroid),
        )
        .run(&g)
        .unwrap();
        let mut other = forest_graph::MultiGraph::new(8);
        for _ in 0..7usize {
            // Same edge count, different topology (7 parallel (0,1) edges),
            // so the path's tails are no longer endpoints of their edges.
            other
                .add_edge(
                    forest_graph::VertexId::new(0),
                    forest_graph::VertexId::new(1),
                )
                .unwrap();
        }
        assert!(matches!(
            report.validate(&other),
            Err(FdError::InvalidOrientation { .. })
        ));
    }

    #[test]
    fn run_sharded_produces_a_valid_stitched_forest() {
        let mut rng = <rand::rngs::StdRng as SeedableRng>::seed_from_u64(31);
        let g = forest_graph::generators::planted_forest_union(120, 3, &mut rng);
        for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_alpha(3)
                    .with_seed(7),
            );
            let report = decomposer.run_sharded(&g, 4).unwrap();
            assert_eq!(report.validation, ValidationStatus::Validated);
            report.validate(&g).unwrap();
            assert!(report.num_colors >= 3, "colors: {}", report.num_colors);
            // Per-shard and stitch charges land in one ledger.
            assert!(report
                .ledger
                .charges()
                .iter()
                .any(|c| c.label.starts_with("shard ")));
            assert!(report
                .ledger
                .charges()
                .iter()
                .any(|c| c.label.starts_with("stitch ")));
            // Deterministic: same request + shard count, same bytes.
            let again = decomposer.run_sharded(&g, 4).unwrap();
            assert_eq!(report.canonical_bytes(), again.canonical_bytes());
        }
    }

    #[test]
    fn run_sharded_rejects_unsupported_problems() {
        let g = generators::path(8);
        let decomposer = Decomposer::new(DecompositionRequest::new(ProblemKind::StarForest));
        assert!(matches!(
            decomposer.run_sharded(&g, 2),
            Err(FdError::ShardingUnsupported {
                problem: ProblemKind::StarForest
            })
        ));
    }

    #[test]
    fn run_sharded_single_shard_has_no_boundary() {
        let g = generators::grid(6, 6);
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(3),
        );
        let report = decomposer.run_sharded(&g, 1).unwrap();
        assert_eq!(report.leftover_edges, 0);
        report.validate(&g).unwrap();
    }

    #[test]
    fn validation_can_be_skipped() {
        let g = generators::path(12);
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .without_validation(),
        )
        .run(&g)
        .unwrap();
        assert_eq!(report.validation, ValidationStatus::Skipped);
        assert_eq!(report.num_colors, 1);
    }
}
