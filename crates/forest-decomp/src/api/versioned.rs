//! Epoch-pinned publication over the streaming decomposer: one writer
//! mutates a [`DynamicDecomposer`], many readers query immutable
//! [`ColoringSnapshot`]s without ever blocking on the writer.
//!
//! This is the snapshot-isolation core the serving layer
//! (`forest-serve`) sits on. The contract has three parts:
//!
//! * **Writers publish, never expose.** A [`VersionedDecomposer`] owns the
//!   live decomposer. Updates go through
//!   [`apply`](VersionedDecomposer::apply) /
//!   [`apply_batch`](VersionedDecomposer::apply_batch) exactly as on the
//!   bare [`DynamicDecomposer`]; nothing a reader can reach changes until
//!   the writer calls [`publish`](VersionedDecomposer::publish), which
//!   freezes the live coloring into an `Arc<ColoringSnapshot>` stamped
//!   with the next epoch id and swaps it into the shared cell.
//! * **Readers pin an epoch, lock-free.** A [`SnapshotReader`] (cheap to
//!   clone, `Send + Sync`) answers [`current`](SnapshotReader::current)
//!   by cloning the latest published `Arc` out of a publication ring —
//!   a handful of atomic operations with no wait on a concurrent publish,
//!   however fast the writer churns (see [`SnapshotCell`]). The clone
//!   pins that epoch for as long as the reader holds it: every query it
//!   answers is consistent with exactly that publication, however far the
//!   writer has moved on.
//! * **Snapshots answer everything the wire protocol asks.** Per-edge
//!   colors ([`color_of_edge`](ColoringSnapshot::color_of_edge)),
//!   per-color forest roots precomputed from the union-find so lookups
//!   need no mutation
//!   ([`forest_of_vertex`](ColoringSnapshot::forest_of_vertex)), the
//!   `≤ color_budget` out-degree orientation each color-forest induces
//!   ([`orientation_out`](ColoringSnapshot::orientation_out)), the live
//!   Nash-Williams arboricity watermark
//!   ([`watermark`](ColoringSnapshot::watermark)), and the reproducible
//!   cold-run report bytes
//!   ([`canonical_bytes`](ColoringSnapshot::canonical_bytes), computed
//!   lazily and cached — byte-identical to [`Decomposer::run`] on the
//!   surviving edges, because it *is* that run).
//!
//! Every snapshot carries a content [`fingerprint`](ColoringSnapshot::fingerprint)
//! computed at publish time; [`verify`](ColoringSnapshot::verify)
//! recomputes it, so a concurrency test (or a paranoid client) can prove
//! no torn state was ever observable.
//!
//! ```
//! use forest_decomp::api::{
//!     DecompositionRequest, EdgeUpdate, Engine, ProblemKind, VersionedDecomposer,
//! };
//!
//! let request = DecompositionRequest::new(ProblemKind::Forest)
//!     .with_engine(Engine::ExactMatroid)
//!     .with_seed(7);
//! let mut versioned = VersionedDecomposer::new(request, 4)?;
//! let reader = versioned.reader(); // hand this to other threads
//! versioned.apply_batch(&[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 2)])?;
//! let snap = versioned.publish();
//! assert_eq!(snap.epoch(), 1);
//! assert_eq!(reader.current().epoch(), 1);
//! assert_eq!(reader.current().live_edges(), 2);
//! # Ok::<(), forest_decomp::FdError>(())
//! ```

use super::dynamic::{BatchReport, DeltaReport, DynamicDecomposer, DynamicStats, EdgeUpdate};
use super::report::DecompositionReport;
use super::{Decomposer, DecompositionRequest};
use crate::error::FdError;
use forest_graph::dynamic::EdgeIdRemap;
use forest_graph::{u32_of, Color, EdgeId, GraphView, MultiGraph, VertexId};
use forest_obs::{clock::Stopwatch, LazyCounter, LazyGauge, LazyHistogram, Span};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock, TryLockError};

/// The arboricity watermark one published epoch reports: how many forests
/// the maintained coloring is using against the best lower bound the
/// stream has certified (Nash-Williams `⌈m/(n−1)⌉` over the live edges,
/// improved by any exhaustive-exchange certificate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArboricityWatermark {
    /// The epoch this watermark describes.
    pub epoch: u64,
    /// Best certified arboricity lower bound at publish time.
    pub lower_bound: usize,
    /// Colors the published coloring uses (`0..color_budget`).
    pub color_budget: usize,
    /// Live edges at publish time.
    pub live_edges: usize,
    /// Vertices of the maintained graph.
    pub num_vertices: usize,
}

/// One published epoch: an immutable, internally-consistent view of the
/// maintained coloring (see the [module docs](self)). Shared by `Arc`;
/// every query takes `&self` and never blocks.
#[derive(Debug)]
pub struct ColoringSnapshot {
    epoch: u64,
    num_vertices: usize,
    live_edges: usize,
    color_budget: usize,
    lower_bound: usize,
    /// Per stable edge id (dead ids `None`), length = the id span at
    /// publish time.
    colors: Vec<Option<Color>>,
    /// `forest_roots[c][v]` = the canonical root (minimum vertex) of `v`'s
    /// tree in color `c`'s forest; `v` itself when isolated in that color.
    forest_roots: Vec<Vec<u32>>,
    /// CSR over vertices: `out_edges[out_offsets[v]..out_offsets[v+1]]`
    /// are the edges `v` points along toward its parent, one per color
    /// whose forest attaches `v` — hence out-degree ≤ `color_budget`
    /// (Corollary 1.1's orientation shape).
    out_offsets: Vec<u32>,
    out_edges: Vec<EdgeId>,
    max_out_degree: usize,
    stats: DynamicStats,
    /// The surviving edges compacted in insertion order (the canonical
    /// "final graph") plus compact→stable ids: what the lazy cold run
    /// decomposes and what `SnapshotBytes` is defined against.
    graph: MultiGraph,
    compact_to_stable: Vec<EdgeId>,
    request: DecompositionRequest,
    fingerprint: u64,
    cold: OnceLock<Result<Vec<u8>, FdError>>,
}

impl ColoringSnapshot {
    /// Freezes the decomposer's current state as epoch `epoch`.
    fn build(dec: &DynamicDecomposer, epoch: u64) -> Self {
        let graph_view = dec.live_graph();
        let n = graph_view.num_vertices();
        let k = dec.color_budget();
        let span = graph_view.edge_id_span();
        let mut colors = vec![None; span];
        let mut per_color: Vec<Vec<(EdgeId, VertexId, VertexId)>> = vec![Vec::new(); k];
        for (e, u, v) in graph_view.live_edges() {
            let c = dec
                .live_coloring()
                .color(e)
                .expect("every live edge carries a color");
            colors[e.index()] = Some(c);
            per_color[c.index()].push((e, u, v));
        }

        // Root every color-class tree at its minimum vertex and orient
        // each edge child→parent: one DFS per component, per color, with
        // the scratch arrays reused across colors (clear only what was
        // touched, so the whole build is O(k·n + m)).
        let mut forest_roots = Vec::with_capacity(k);
        let mut out: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut adj: Vec<Vec<(VertexId, EdgeId)>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for class in &per_color {
            for &(e, u, v) in class {
                adj[u.index()].push((v, e));
                adj[v.index()].push((u, e));
                touched.push(u.index());
                touched.push(v.index());
            }
            touched.sort_unstable();
            touched.dedup();
            let mut roots: Vec<u32> = (0..u32_of(n)).collect();
            // Ascending scan: the first unvisited vertex of a component is
            // its minimum, so roots are canonical regardless of insertion
            // order.
            for &s in &touched {
                if visited[s] {
                    continue;
                }
                visited[s] = true;
                stack.push(s);
                while let Some(x) = stack.pop() {
                    for &(w, e) in &adj[x] {
                        if !visited[w.index()] {
                            visited[w.index()] = true;
                            roots[w.index()] = u32_of(s);
                            out[w.index()].push(e);
                            stack.push(w.index());
                        }
                    }
                }
            }
            for &t in &touched {
                adj[t].clear();
                visited[t] = false;
            }
            touched.clear();
            forest_roots.push(roots);
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_edges = Vec::with_capacity(graph_view.num_live_edges());
        let mut max_out_degree = 0;
        out_offsets.push(0u32);
        for v in &mut out {
            v.sort_unstable_by_key(|e| e.index());
            max_out_degree = max_out_degree.max(v.len());
            out_edges.extend_from_slice(v);
            out_offsets.push(u32_of(out_edges.len()));
        }

        let (graph, compact_to_stable) = dec.snapshot_graph();
        let mut snap = ColoringSnapshot {
            epoch,
            num_vertices: n,
            live_edges: graph_view.num_live_edges(),
            color_budget: k,
            lower_bound: dec.arboricity_lower_bound(),
            colors,
            forest_roots,
            out_offsets,
            out_edges,
            max_out_degree,
            stats: dec.stats(),
            graph,
            compact_to_stable,
            request: dec.request().clone(),
            fingerprint: 0,
            cold: OnceLock::new(),
        };
        snap.fingerprint = snap.compute_fingerprint();
        snap
    }

    /// The epoch this snapshot was published as (0 = the registration
    /// snapshot, before any [`publish`](VersionedDecomposer::publish)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Vertices of the maintained graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Live edges at publish time.
    pub fn live_edges(&self) -> usize {
        self.live_edges
    }

    /// Colors in use at publish time (`0..color_budget`).
    pub fn color_budget(&self) -> usize {
        self.color_budget
    }

    /// The forest color of a (stable-id) edge; `None` when the id was dead
    /// or unassigned at publish time.
    pub fn color_of_edge(&self, e: EdgeId) -> Option<Color> {
        self.colors.get(e.index()).copied().flatten()
    }

    /// The canonical root (minimum vertex) of `v`'s tree in color `c`'s
    /// forest — `v` itself when no edge of that color touches it. Two
    /// vertices are connected in forest `c` iff they report the same root.
    /// `None` when `c` is outside the budget or `v` out of range.
    pub fn forest_of_vertex(&self, c: Color, v: VertexId) -> Option<VertexId> {
        let roots = self.forest_roots.get(c.index())?;
        roots.get(v.index()).map(|&r| VertexId::new(r as usize))
    }

    /// The edges `v` points along toward its parents, one per color whose
    /// forest attaches `v` — the `≤ color_budget` out-degree orientation.
    /// `None` when `v` is out of range.
    pub fn orientation_out(&self, v: VertexId) -> Option<&[EdgeId]> {
        let lo = *self.out_offsets.get(v.index())? as usize;
        let hi = *self.out_offsets.get(v.index() + 1)? as usize;
        Some(&self.out_edges[lo..hi])
    }

    /// The largest out-degree the orientation assigns (≤
    /// [`color_budget`](ColoringSnapshot::color_budget)).
    pub fn max_out_degree(&self) -> usize {
        self.max_out_degree
    }

    /// The live arboricity watermark at publish time.
    pub fn watermark(&self) -> ArboricityWatermark {
        ArboricityWatermark {
            epoch: self.epoch,
            lower_bound: self.lower_bound,
            color_budget: self.color_budget,
            live_edges: self.live_edges,
            num_vertices: self.num_vertices,
        }
    }

    /// Cumulative stream counters at publish time.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// The surviving edges compacted in insertion order — the canonical
    /// final graph the reproducibility contract is defined against — plus
    /// the compact→stable id map.
    pub fn compact_graph(&self) -> (&MultiGraph, &[EdgeId]) {
        (&self.graph, &self.compact_to_stable)
    }

    /// The reproducible report for this epoch: the cold [`Decomposer`]
    /// pipeline over the surviving edges, run lazily on first call and
    /// cached — so `SnapshotBytes` requests after the first are a memcpy,
    /// and the bytes are identical to what [`Decomposer::run`] returns on
    /// the same graph with the same request.
    ///
    /// # Errors
    ///
    /// Whatever the cold run returns (cached too: the run is attempted
    /// once per snapshot).
    pub fn cold_report(&self) -> Result<DecompositionReport, FdError> {
        Decomposer::new(self.request.clone()).run(&self.graph)
    }

    /// [`DecompositionReport::canonical_bytes`] of
    /// [`cold_report`](ColoringSnapshot::cold_report), computed once and
    /// cached in the snapshot.
    ///
    /// # Errors
    ///
    /// Whatever the cold run returned.
    pub fn canonical_bytes(&self) -> Result<Vec<u8>, FdError> {
        self.cold
            .get_or_init(|| self.cold_report().map(|r| r.canonical_bytes()))
            .clone()
    }

    /// The content fingerprint stamped at publish time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the fingerprint from the snapshot's content: `true` iff
    /// it matches the stamp. A reader that validates this on a snapshot it
    /// obtained concurrently with publishes has proof the view is not
    /// torn.
    pub fn verify(&self) -> bool {
        self.compute_fingerprint() == self.fingerprint
    }

    /// FNV-1a over every queryable field (the cold cache excluded — it is
    /// derived and computed lazily).
    fn compute_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.epoch);
        h.word(self.num_vertices as u64);
        h.word(self.live_edges as u64);
        h.word(self.color_budget as u64);
        h.word(self.lower_bound as u64);
        h.word(self.max_out_degree as u64);
        for c in &self.colors {
            h.word(c.map_or(0, |c| c.index() as u64 + 1));
        }
        for roots in &self.forest_roots {
            for &r in roots {
                h.word(r as u64);
            }
        }
        for &o in &self.out_offsets {
            h.word(o as u64);
        }
        for &e in &self.out_edges {
            h.word(e.index() as u64);
        }
        for &e in &self.compact_to_stable {
            h.word(e.index() as u64);
        }
        h.finish()
    }
}

/// FNV-1a, word-at-a-time — cheap, stable, and dependency-free; collision
/// resistance is irrelevant here (the fingerprint defends against torn
/// reads, not adversaries).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Slots in the publication ring. A reader retries only if the single
/// writer laps the whole ring — `SLOTS` publishes — inside the reader's
/// few-instruction clone window; 8 makes that practically impossible
/// while keeping the ring cache-resident.
const SLOTS: usize = 8;

/// The shared publication point: a ring of slots holding the most recent
/// `Arc<ColoringSnapshot>`s, with one slot marked current by an atomic
/// index.
///
/// **Reader protocol** (`current`): load the current index, `try_read`
/// that slot, clone the `Arc` out. `try_read` never waits — and it never
/// even *fails* in steady state, because the writer only ever
/// write-locks the slot **after** the current one (the oldest
/// publication, `SLOTS` epochs stale), never the slot readers are
/// directed at. A reader observes a locked slot only if the writer laps
/// the entire ring inside the reader's few-instruction window between
/// loading the index and acquiring the slot; it then re-loads the (by
/// then updated) index and succeeds. So readers never block on the
/// writer: every retry implies the writer *completed* `SLOTS` publishes
/// — system-wide progress — and the loop is obstruction-free.
///
/// **Writer protocol** (`publish`; externally serialized — only
/// [`VersionedDecomposer::publish`], which takes `&mut self`, calls it):
/// write-lock the slot after the current one, replace its content, drop
/// the lock, then swap the current index. The write-lock acquisition
/// waits only for readers still cloning out of that `SLOTS`-stale slot —
/// a clone is a handful of instructions, so the writer's wait is bounded
/// and tiny, and it is always the writer that waits, never the readers.
///
/// Lock poisoning cannot occur: no panic site exists between lock and
/// unlock (the guarded code is an `Option<Arc>` assignment or clone);
/// both paths still handle a poisoned lock by taking the guard anyway,
/// so even an unforeseen panic elsewhere can not wedge the ring.
struct SnapshotCell {
    current: AtomicUsize,
    epoch_hint: AtomicU64,
    slots: [RwLock<Option<Arc<ColoringSnapshot>>>; SLOTS],
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("current", &self.current.load(Ordering::SeqCst))
            .field("epoch_hint", &self.epoch_hint.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl SnapshotCell {
    /// A cell whose slot 0 holds `first` (published as the current slot).
    fn new(first: Arc<ColoringSnapshot>) -> Self {
        let epoch = first.epoch();
        let slots = [(); SLOTS].map(|_| RwLock::new(None));
        *slots[0].write().unwrap_or_else(PoisonError::into_inner) = Some(first);
        SnapshotCell {
            current: AtomicUsize::new(0),
            epoch_hint: AtomicU64::new(epoch),
            slots,
        }
    }

    /// Publishes `snap` as the new current snapshot (single writer only;
    /// see the type docs).
    fn publish(&self, snap: Arc<ColoringSnapshot>) {
        let epoch = snap.epoch();
        let next = (self.current.load(Ordering::SeqCst) + 1) % SLOTS;
        {
            // Waits only for readers still cloning out of this
            // `SLOTS`-stale slot (nanoseconds); new readers are directed
            // at `current`, which still points elsewhere.
            let mut guard = self.slots[next]
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *guard = Some(snap);
        }
        self.current.store(next, Ordering::SeqCst);
        self.epoch_hint.store(epoch, Ordering::SeqCst);
    }

    /// Clones the current snapshot out without ever blocking on the
    /// writer (see the type docs).
    fn current(&self) -> Arc<ColoringSnapshot> {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            let guard = match self.slots[idx].try_read() {
                Ok(guard) => guard,
                Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    // The writer lapped the whole ring onto this slot
                    // inside our window; the current index has already
                    // moved on — re-read it.
                    std::hint::spin_loop();
                    continue;
                }
            };
            if let Some(snap) = guard.as_ref() {
                return Arc::clone(snap);
            }
            // Unreachable in practice: the cell is constructed with slot
            // 0 occupied and `current` only ever points at published
            // slots. Retry defensively.
            std::hint::spin_loop();
        }
    }

    /// The epoch of the latest publish, without touching the slots — what
    /// a lag probe polls.
    fn epoch_hint(&self) -> u64 {
        self.epoch_hint.load(Ordering::SeqCst)
    }
}

/// A cloneable, `Send + Sync` handle that reads the latest published
/// [`ColoringSnapshot`] lock-free. Hand one to every serving thread; the
/// writer keeps the [`VersionedDecomposer`].
#[derive(Clone)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
}

impl SnapshotReader {
    /// The latest published snapshot (a cheap `Arc` clone; never blocks
    /// on the writer).
    pub fn current(&self) -> Arc<ColoringSnapshot> {
        self.cell.current()
    }

    /// The epoch of the latest publish, from a single atomic load — the
    /// cheapest way to poll for visibility of a publish (the
    /// publish-to-read lag probe in the benchmarks).
    pub fn current_epoch(&self) -> u64 {
        self.cell.epoch_hint()
    }
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("epoch", &self.current().epoch())
            .finish()
    }
}

/// A [`DynamicDecomposer`] behind epoch-pinned publication: the writer
/// half of the snapshot-isolation core (see the [module docs](self)).
#[derive(Debug)]
pub struct VersionedDecomposer {
    inner: DynamicDecomposer,
    cell: Arc<SnapshotCell>,
    epoch: u64,
}

impl VersionedDecomposer {
    /// A versioned decomposer over an initially empty edge set; epoch 0
    /// (the empty coloring) is published immediately.
    ///
    /// # Errors
    ///
    /// As [`DynamicDecomposer::new`].
    pub fn new(request: DecompositionRequest, num_vertices: usize) -> Result<Self, FdError> {
        Ok(Self::wrap(DynamicDecomposer::new(request, num_vertices)?))
    }

    /// Seeds from an existing graph (replaying every edge as an insert)
    /// and publishes the result as epoch 0.
    ///
    /// # Errors
    ///
    /// As [`DynamicDecomposer::from_graph`].
    pub fn from_graph(request: DecompositionRequest, g: &MultiGraph) -> Result<Self, FdError> {
        Ok(Self::wrap(DynamicDecomposer::from_graph(request, g)?))
    }

    /// [`from_graph`](VersionedDecomposer::from_graph) over any
    /// [`GraphView`] (e.g. an mmap-backed CSR).
    ///
    /// # Errors
    ///
    /// As [`DynamicDecomposer::from_view`].
    pub fn from_view<G: GraphView>(request: DecompositionRequest, g: &G) -> Result<Self, FdError> {
        Ok(Self::wrap(DynamicDecomposer::from_view(request, g)?))
    }

    fn wrap(inner: DynamicDecomposer) -> Self {
        let first = Arc::new(ColoringSnapshot::build(&inner, 0));
        VersionedDecomposer {
            inner,
            cell: Arc::new(SnapshotCell::new(first)),
            epoch: 0,
        }
    }

    /// Applies one update to the live (unpublished) state.
    ///
    /// # Errors
    ///
    /// As [`DynamicDecomposer::apply`].
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<DeltaReport, FdError> {
        self.inner.apply(update)
    }

    /// Applies a frame of updates (deletes first) to the live state.
    ///
    /// # Errors
    ///
    /// As [`DynamicDecomposer::apply_batch`].
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<BatchReport, FdError> {
        self.inner.apply_batch(updates)
    }

    /// Compacts the live edge-id space
    /// ([`DynamicDecomposer::compact_ids`]). Published snapshots are
    /// unaffected — they answer under the ids of their own epoch; the
    /// *next* publish speaks the compact ids, so a serving layer must
    /// translate client-held ids through the returned remap.
    pub fn compact_ids(&mut self) -> EdgeIdRemap {
        self.inner.compact_ids()
    }

    /// Freezes the live state as the next epoch and publishes it: after
    /// this returns, every [`SnapshotReader::current`] — including on
    /// other threads — observes the new epoch.
    pub fn publish(&mut self) -> Arc<ColoringSnapshot> {
        /// Cumulative publish count across decomposer instances.
        static PUBLISHES: LazyCounter = LazyCounter::new("versioned.publishes_total");
        /// The most recently published epoch (high watermark — a gauge,
        /// since epochs are per-instance).
        static PUBLISHED_EPOCH: LazyGauge = LazyGauge::new("versioned.published_epoch");
        /// Publish latency — the epoch lag between the live state and
        /// readers: how long [`SnapshotReader::current`] answers stay one
        /// epoch behind while the freeze runs.
        static PUBLISH_LAG_NANOS: LazyHistogram = LazyHistogram::new("versioned.publish_lag_nanos");
        let _span = Span::enter("versioned.publish");
        let lag = Stopwatch::start();
        self.epoch += 1;
        let snap = Arc::new(ColoringSnapshot::build(&self.inner, self.epoch));
        self.cell.publish(Arc::clone(&snap));
        PUBLISHES.inc();
        PUBLISHED_EPOCH.set_max(self.epoch);
        PUBLISH_LAG_NANOS.observe(lag.elapsed_nanos());
        snap
    }

    /// The epoch of the latest publish (0 until the first
    /// [`publish`](VersionedDecomposer::publish)).
    pub fn published_epoch(&self) -> u64 {
        self.epoch
    }

    /// The latest published snapshot.
    pub fn current(&self) -> Arc<ColoringSnapshot> {
        self.cell.current()
    }

    /// A lock-free reader handle onto this decomposer's publications.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// The live (unpublished) decomposer state.
    pub fn inner(&self) -> &DynamicDecomposer {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Engine, ProblemKind};
    use forest_graph::generators;

    fn request() -> DecompositionRequest {
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(11)
    }

    #[test]
    fn publish_gates_visibility() {
        let mut vd = VersionedDecomposer::new(request(), 4).unwrap();
        let reader = vd.reader();
        assert_eq!(reader.current().epoch(), 0);
        assert_eq!(reader.current().live_edges(), 0);
        vd.apply(EdgeUpdate::insert(0, 1)).unwrap();
        // Not yet published: readers still see epoch 0.
        assert_eq!(reader.current().live_edges(), 0);
        let snap = vd.publish();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(reader.current().epoch(), 1);
        assert_eq!(reader.current().live_edges(), 1);
        // Old snapshots stay pinned and valid.
        assert!(snap.verify());
    }

    #[test]
    fn snapshot_queries_match_live_state() {
        let g = generators::grid(6, 6);
        let mut vd = VersionedDecomposer::from_graph(request(), &g).unwrap();
        let snap = vd.publish();
        assert_eq!(snap.live_edges(), g.num_edges());
        assert_eq!(snap.color_budget(), vd.inner().color_budget());
        assert!(snap.watermark().lower_bound >= 2, "grid arboricity is 2");
        let mut out_total = 0;
        for v in 0..snap.num_vertices() {
            let out = snap.orientation_out(VertexId::new(v)).unwrap();
            assert!(out.len() <= snap.color_budget());
            out_total += out.len();
        }
        assert_eq!(out_total, snap.live_edges(), "every edge oriented once");
        assert!(snap.max_out_degree() <= snap.color_budget());
        // Forest roots agree with the coloring: endpoints of an edge of
        // color c share a root in forest c.
        for (e, u, v) in vd.inner().live_graph().live_edges() {
            let c = snap.color_of_edge(e).unwrap();
            assert_eq!(
                snap.forest_of_vertex(c, u).unwrap(),
                snap.forest_of_vertex(c, v).unwrap()
            );
        }
        // Out-of-range queries answer None, never panic.
        assert_eq!(snap.color_of_edge(EdgeId::new(9999)), None);
        assert_eq!(
            snap.forest_of_vertex(Color::new(99), VertexId::new(0)),
            None
        );
        assert_eq!(snap.orientation_out(VertexId::new(9999)), None);
        assert!(snap.verify());
    }

    #[test]
    fn canonical_bytes_match_cold_run() {
        let g = generators::grid(5, 4);
        let mut vd = VersionedDecomposer::from_graph(request(), &g).unwrap();
        vd.apply(EdgeUpdate::insert(0, 7)).unwrap();
        let snap = vd.publish();
        let (compact, _) = snap.compact_graph();
        let cold = Decomposer::new(request()).run(compact).unwrap();
        assert_eq!(snap.canonical_bytes().unwrap(), cold.canonical_bytes());
        // Cached: second call returns the same bytes.
        assert_eq!(snap.canonical_bytes().unwrap(), cold.canonical_bytes());
    }

    #[test]
    fn ring_survives_many_publishes() {
        let mut vd = VersionedDecomposer::new(request(), 8).unwrap();
        let reader = vd.reader();
        let early = reader.current();
        for i in 0..(3 * SLOTS as u64) {
            vd.apply(EdgeUpdate::insert((i as usize) % 8, (i as usize + 1) % 8))
                .unwrap();
            let snap = vd.publish();
            assert_eq!(snap.epoch(), i + 1);
            assert_eq!(reader.current().epoch(), i + 1);
        }
        // A snapshot pinned 3 laps ago is still intact.
        assert_eq!(early.epoch(), 0);
        assert!(early.verify());
    }
}
