//! Engine adapters: the [`DecompositionEngine`] trait and one adapter per
//! [`Engine`], running the pipeline modules over a frozen topology.

use super::report::Artifact;
use super::{DecompositionRequest, Engine, ProblemKind};
use crate::baselines::{barenboim_elkin_forest_decomposition, two_color_star_forests};
use crate::combine::{
    forest_decomposition, forest_decomposition_shard, list_forest_decomposition, FdOptions,
};
use crate::error::FdError;
use crate::orientation::orientation_from_decomposition;
use crate::star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
};
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{
    ColorConnectivity, CsrRef, EdgeId, ForestDecomposition, GraphView, ListAssignment, MultiGraph,
    SimpleGraph,
};
use local_model::RoundLedger;
use rand::rngs::SmallRng;
use std::borrow::Cow;

/// One decomposition input, frozen once per request: the compressed-sparse-row
/// view every algorithm runs over, optionally paired with the adjacency-list
/// twin it was frozen from. The [`Decomposer`](super::Decomposer) constructs
/// this at the request boundary and threads it through every engine, so no
/// pipeline re-freezes (and batch runs over the same graph share one freeze —
/// see [`FrozenGraph`](super::FrozenGraph)).
///
/// The CSR side is a zero-copy [`CsrRef`], so the *same* engine code runs
/// over owned arrays, an mmap-backed file, or one shard of a
/// [`CsrPartition`](forest_graph::CsrPartition) — storage is erased at this
/// boundary. The adjacency-list side is **optional**: every forest /
/// orientation path is CSR-only, and CSR-only inputs (shards, mmap files)
/// run without ever materializing a `MultiGraph`. The few simple-graph
/// pipelines that need adjacency lists call [`FrozenInput::thaw`], which
/// borrows the twin when the caller supplied one and thaws from the CSR
/// otherwise.
#[derive(Clone, Copy, Debug)]
pub struct FrozenInput<'a> {
    /// The adjacency-list twin, when the caller has one.
    graph: Option<&'a MultiGraph>,
    /// The frozen CSR topology every hot path runs over, borrowed from
    /// whichever storage owns it.
    pub csr: CsrRef<'a>,
}

impl<'a> FrozenInput<'a> {
    /// An input that carries both representations (the multigraph front
    /// doors: `&MultiGraph`, [`FrozenGraph`](super::FrozenGraph)).
    pub fn new(graph: &'a MultiGraph, csr: CsrRef<'a>) -> Self {
        FrozenInput {
            graph: Some(graph),
            csr,
        }
    }

    /// A CSR-only input (shards, mmap-backed graphs): engines run over the
    /// view directly, thawing only if a simple-graph pipeline demands
    /// adjacency lists.
    pub fn from_csr(csr: CsrRef<'a>) -> Self {
        FrozenInput { graph: None, csr }
    }

    /// The adjacency-list twin, if the caller supplied one.
    pub fn multigraph(&self) -> Option<&'a MultiGraph> {
        self.graph
    }

    /// The adjacency-list form: borrowed when the caller supplied one,
    /// thawed from the CSR otherwise (`O(n + m)`, exact round-trip).
    pub fn thaw(&self) -> Cow<'a, MultiGraph> {
        match self.graph {
            Some(g) => Cow::Borrowed(g),
            None => Cow::Owned(self.csr.to_multigraph()),
        }
    }
}

/// What a shard-level forest decomposition hands back to `run_sharded`:
/// like [`EngineOutcome`] minus the artifact packaging and the per-shard
/// diameter measurement (the stitcher measures once, globally).
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The shard's complete forest decomposition (local edge ids).
    pub decomposition: ForestDecomposition,
    /// Per-color union-finds over the shard's *local* vertices, exactly
    /// covering [`ShardOutcome::decomposition`]. Built while the shard's
    /// arrays are cache-hot; the stitcher queries these through component
    /// representatives instead of re-unioning every internal edge into
    /// whole-graph structures.
    pub connectivity: ColorConnectivity,
    /// The arboricity bound the shard run was based on.
    pub arboricity: usize,
    /// The shard's color id span: max color index + 1. This is what the
    /// stitcher's budget and the primed connectivity must cover — **not**
    /// the count of distinct colors, which under-shoots whenever a coloring
    /// leaves index gaps (the Harris–Su–Vu leftover star colors do).
    pub color_span: usize,
    /// Shard edges that went through a leftover/recoloring phase.
    pub leftover_edges: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// What an engine adapter hands back to the [`Decomposer`](super::Decomposer)
/// for packaging into a [`DecompositionReport`](super::DecompositionReport).
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// The produced artifact.
    pub artifact: Artifact,
    /// The arboricity (or pseudo-arboricity) bound the run was based on.
    pub arboricity: usize,
    /// Colors / forests used.
    pub num_colors: usize,
    /// Maximum tree diameter of the (underlying) decomposition.
    pub max_diameter: usize,
    /// Edges that went through a leftover/recoloring phase.
    pub leftover_edges: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// One algorithm family, adapted to the uniform request/outcome shape.
///
/// This is the seam later subsystems (server, sharding, caching) plug into:
/// implementing the trait and registering the engine is all a new pipeline
/// needs to be reachable from the facade.
pub trait DecompositionEngine: Sync {
    /// The engine this adapter implements.
    fn engine(&self) -> Engine;

    /// Whether the engine can solve `problem` at all.
    fn supports(&self, problem: ProblemKind) -> bool;

    /// Runs the engine on a frozen input. `lists` is `Some` exactly for list
    /// problems (resolved by the `Decomposer` from the request's
    /// [`PaletteSpec`](super::PaletteSpec)).
    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        lists: Option<&ListAssignment>,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError>;

    /// Forest-decomposes one zero-copy CSR shard — the `run_sharded` hot
    /// path. No adjacency-list twin is ever built and no per-shard diameter
    /// is measured (the stitcher measures once globally). Engines that
    /// cannot solve [`ProblemKind::Forest`] keep the default, which returns
    /// the same typed error as [`DecompositionEngine::execute`] would.
    fn decompose_shard(
        &self,
        csr: CsrRef<'_>,
        request: &DecompositionRequest,
        rng: &mut SmallRng,
    ) -> Result<ShardOutcome, FdError> {
        let _ = (csr, rng);
        Err(unsupported(ProblemKind::Forest, request.engine))
    }
}

/// Returns the adapter for `engine`.
pub(super) fn engine_for(engine: Engine) -> &'static dyn DecompositionEngine {
    match engine {
        Engine::HarrisSuVu => &HarrisSuVuEngine,
        Engine::BarenboimElkin => &BarenboimElkinEngine,
        Engine::Folklore2Alpha => &Folklore2AlphaEngine,
        Engine::ExactMatroid => &ExactMatroidEngine,
    }
}

fn unsupported(problem: ProblemKind, engine: Engine) -> FdError {
    FdError::UnsupportedCombination { problem, engine }
}

/// The color id span of a complete coloring: max color index + 1 (0 when
/// edgeless). Distinct-color counts are NOT a substitute — colorings with
/// index gaps (HSV leftover star colors) would leave the gap colors
/// unprimed, and [`ColorConnectivity::insert`] silently drops edges of
/// unprimed colors.
fn color_span(fd: &ForestDecomposition) -> usize {
    fd.colors().iter().map(|c| c.index() + 1).max().unwrap_or(0)
}

/// Per-color union-finds over a shard's local vertices, covering `fd`
/// exactly — built right after the shard decomposition while its arrays are
/// still cache-resident. `span` must be at least [`color_span`]`(fd)`.
fn shard_connectivity(
    csr: &CsrRef<'_>,
    fd: &ForestDecomposition,
    span: usize,
) -> ColorConnectivity {
    debug_assert!(span >= color_span(fd));
    let mut conn = ColorConnectivity::new(csr.num_vertices());
    conn.prime(span);
    for (i, &c) in fd.colors().iter().enumerate() {
        let (u, v) = csr.endpoints(EdgeId::new(i));
        conn.insert(c, u, v);
    }
    conn
}

fn fd_options(request: &DecompositionRequest) -> FdOptions {
    let mut options = FdOptions::new(request.epsilon);
    options.alpha = request.alpha;
    options.cut = request.cut;
    options.diameter_target = request.diameter_target;
    options.radii = request.radii;
    options
}

fn resolved_alpha(input: FrozenInput<'_>, request: &DecompositionRequest) -> usize {
    request
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(&input.csr))
        .max(1)
}

fn simple_view(g: Cow<'_, MultiGraph>) -> Result<SimpleGraph, FdError> {
    // Cheap borrowing check first so the error path never pays a clone; an
    // already-thawed (owned) graph moves straight in.
    if !g.is_simple() {
        return Err(FdError::NotSimple);
    }
    SimpleGraph::try_from_multigraph(g.into_owned()).map_err(|_| FdError::NotSimple)
}

fn required_lists(
    lists: Option<&ListAssignment>,
    problem: ProblemKind,
) -> Result<&ListAssignment, FdError> {
    lists.ok_or(FdError::MissingPalettes { problem })
}

fn decomposition_outcome<C: GraphView>(
    csr: &C,
    decomposition: ForestDecomposition,
    arboricity: usize,
    leftover_edges: usize,
    ledger: RoundLedger,
) -> EngineOutcome {
    let num_colors = decomposition.num_colors_used();
    let max_diameter = max_forest_diameter(csr, &decomposition.to_partial());
    EngineOutcome {
        artifact: Artifact::Decomposition(decomposition),
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        ledger,
    }
}

/// Turns a complete forest decomposition into an orientation outcome by
/// rooting every tree and orienting toward the root (Corollary 1.1).
fn orient_outcome<C: GraphView>(csr: &C, outcome: EngineOutcome) -> EngineOutcome {
    let EngineOutcome {
        artifact,
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        mut ledger,
    } = outcome;
    let decomposition = match artifact {
        Artifact::Decomposition(fd) => fd,
        Artifact::Orientation { .. } => unreachable!("orient_outcome takes decompositions"),
    };
    ledger.charge("orient each tree toward its root", max_diameter.max(1));
    let orientation = orientation_from_decomposition(csr, &decomposition);
    let max_out_degree = orientation.max_out_degree(csr);
    EngineOutcome {
        artifact: Artifact::Orientation {
            orientation,
            max_out_degree,
        },
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        ledger,
    }
}

/// The paper's `(1+ε)α` pipelines (Theorems 4.6, 4.10, 5.4, Corollary 1.1).
pub struct HarrisSuVuEngine;

impl HarrisSuVuEngine {
    fn forest(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        let result = forest_decomposition(&input.csr, &fd_options(request), rng)?;
        Ok(EngineOutcome {
            artifact: Artifact::Decomposition(result.decomposition),
            arboricity: result.arboricity,
            num_colors: result.num_colors,
            max_diameter: result.max_diameter,
            leftover_edges: result.leftover_edges,
            ledger: result.ledger,
        })
    }
}

impl DecompositionEngine for HarrisSuVuEngine {
    fn engine(&self) -> Engine {
        Engine::HarrisSuVu
    }

    fn supports(&self, _problem: ProblemKind) -> bool {
        true
    }

    fn decompose_shard(
        &self,
        csr: CsrRef<'_>,
        request: &DecompositionRequest,
        rng: &mut SmallRng,
    ) -> Result<ShardOutcome, FdError> {
        let result = forest_decomposition_shard(&csr, &fd_options(request), rng)?;
        let span = color_span(&result.decomposition);
        let connectivity = shard_connectivity(&csr, &result.decomposition, span);
        Ok(ShardOutcome {
            decomposition: result.decomposition,
            connectivity,
            arboricity: result.arboricity,
            color_span: span,
            leftover_edges: result.leftover_edges,
            ledger: result.ledger,
        })
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        lists: Option<&ListAssignment>,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => self.forest(input, request, rng),
            ProblemKind::Orientation => {
                let forest = self.forest(input, request, rng)?;
                Ok(orient_outcome(&input.csr, forest))
            }
            ProblemKind::ListForest => {
                let lists = required_lists(lists, request.problem)?;
                let g = input.thaw();
                let result =
                    list_forest_decomposition(&g, &input.csr, lists, &fd_options(request), rng)?;
                let decomposition = result.coloring.into_complete()?;
                Ok(EngineOutcome {
                    artifact: Artifact::Decomposition(decomposition),
                    arboricity: result.arboricity,
                    num_colors: result.num_colors,
                    max_diameter: result.max_diameter,
                    leftover_edges: result.leftover_edges,
                    ledger: result.ledger,
                })
            }
            ProblemKind::StarForest => {
                let simple = simple_view(input.thaw())?;
                let alpha = resolved_alpha(input, request);
                let config = SfdConfig::new(request.epsilon).with_alpha(alpha);
                let result = star_forest_decomposition_simple(&simple, &input.csr, &config, rng)?;
                Ok(decomposition_outcome(
                    &input.csr,
                    result.decomposition,
                    alpha,
                    result.leftover_edges,
                    result.ledger,
                ))
            }
            ProblemKind::ListStarForest => {
                let lists = required_lists(lists, request.problem)?;
                let simple = simple_view(input.thaw())?;
                let alpha = resolved_alpha(input, request);
                let config = SfdConfig::new(request.epsilon).with_alpha(alpha);
                let result = list_star_forest_decomposition_simple(
                    &simple, &input.csr, lists, &config, rng,
                )?;
                Ok(decomposition_outcome(
                    &input.csr,
                    result.decomposition,
                    alpha,
                    result.leftover_edges,
                    result.ledger,
                ))
            }
        }
    }
}

/// The `(2+ε)α*` H-partition baseline [BE10].
pub struct BarenboimElkinEngine;

impl BarenboimElkinEngine {
    fn forest(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
    ) -> Result<EngineOutcome, FdError> {
        let bound = request
            .alpha
            .unwrap_or_else(|| forest_graph::orientation::pseudoarboricity(&input.csr))
            .max(1);
        let mut ledger = RoundLedger::new();
        let baseline =
            barenboim_elkin_forest_decomposition(&input.csr, request.epsilon, bound, &mut ledger)?;
        Ok(decomposition_outcome(
            &input.csr,
            baseline.decomposition,
            bound,
            0,
            ledger,
        ))
    }
}

impl DecompositionEngine for BarenboimElkinEngine {
    fn engine(&self) -> Engine {
        Engine::BarenboimElkin
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
    }

    fn decompose_shard(
        &self,
        csr: CsrRef<'_>,
        request: &DecompositionRequest,
        _rng: &mut SmallRng,
    ) -> Result<ShardOutcome, FdError> {
        let bound = request
            .alpha
            .unwrap_or_else(|| forest_graph::orientation::pseudoarboricity(&csr))
            .max(1);
        let mut ledger = RoundLedger::new();
        let baseline =
            barenboim_elkin_forest_decomposition(&csr, request.epsilon, bound, &mut ledger)?;
        let span = color_span(&baseline.decomposition);
        let connectivity = shard_connectivity(&csr, &baseline.decomposition, span);
        Ok(ShardOutcome {
            decomposition: baseline.decomposition,
            connectivity,
            arboricity: bound,
            color_span: span,
            leftover_edges: 0,
            ledger,
        })
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => self.forest(input, request),
            ProblemKind::Orientation => {
                let forest = self.forest(input, request)?;
                Ok(orient_outcome(&input.csr, forest))
            }
            other => Err(unsupported(other, self.engine())),
        }
    }
}

/// The folklore `α_star ≤ 2α` construction: exact decomposition plus
/// depth-parity two-coloring.
pub struct Folklore2AlphaEngine;

impl DecompositionEngine for Folklore2AlphaEngine {
    fn engine(&self) -> Engine {
        Engine::Folklore2Alpha
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::StarForest)
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        if request.problem != ProblemKind::StarForest {
            return Err(unsupported(request.problem, self.engine()));
        }
        let exact = forest_graph::matroid::exact_forest_decomposition(&input.csr);
        let stars = two_color_star_forests(&input.csr, &exact.decomposition);
        let mut ledger = RoundLedger::new();
        ledger.charge(
            "centralized exact decomposition + two-coloring (non-LOCAL)",
            0,
        );
        Ok(decomposition_outcome(
            &input.csr,
            stars,
            exact.arboricity,
            0,
            ledger,
        ))
    }
}

/// The centralized Gabow–Westermann matroid partition (exact `α`).
pub struct ExactMatroidEngine;

impl ExactMatroidEngine {
    fn forest(&self, input: FrozenInput<'_>) -> EngineOutcome {
        let exact = forest_graph::matroid::exact_forest_decomposition(&input.csr);
        let mut ledger = RoundLedger::new();
        ledger.charge("centralized matroid partition (non-LOCAL)", 0);
        decomposition_outcome(&input.csr, exact.decomposition, exact.arboricity, 0, ledger)
    }
}

impl DecompositionEngine for ExactMatroidEngine {
    fn engine(&self) -> Engine {
        Engine::ExactMatroid
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
    }

    fn decompose_shard(
        &self,
        csr: CsrRef<'_>,
        _request: &DecompositionRequest,
        _rng: &mut SmallRng,
    ) -> Result<ShardOutcome, FdError> {
        let exact = forest_graph::matroid::exact_forest_decomposition(&csr);
        // A minimal matroid partition uses every color 0..alpha, so span and
        // distinct count coincide here.
        let span = color_span(&exact.decomposition);
        // The matroid partition maintained exactly the per-color forests the
        // stitcher needs; hand its cache through instead of rebuilding.
        let connectivity = exact.connectivity;
        let mut ledger = RoundLedger::new();
        ledger.charge("centralized matroid partition (non-LOCAL)", 0);
        Ok(ShardOutcome {
            decomposition: exact.decomposition,
            connectivity,
            arboricity: exact.arboricity,
            color_span: span,
            leftover_edges: 0,
            ledger,
        })
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => Ok(self.forest(input)),
            ProblemKind::Orientation => Ok(orient_outcome(&input.csr, self.forest(input))),
            other => Err(unsupported(other, self.engine())),
        }
    }
}
