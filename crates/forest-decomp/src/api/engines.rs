//! Engine adapters: the [`DecompositionEngine`] trait and one adapter per
//! [`Engine`], running the pipeline modules over a frozen topology.

use super::report::Artifact;
use super::{DecompositionRequest, Engine, ProblemKind};
use crate::baselines::{barenboim_elkin_forest_decomposition, two_color_star_forests};
use crate::combine::{forest_decomposition, list_forest_decomposition, FdOptions};
use crate::error::FdError;
use crate::orientation::orientation_from_decomposition;
use crate::star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
};
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{
    CsrRef, ForestDecomposition, GraphView, ListAssignment, MultiGraph, SimpleGraph,
};
use local_model::RoundLedger;
use rand::rngs::SmallRng;

/// One decomposition input, frozen once per request: the mutable builder
/// representation plus its compressed-sparse-row view. The
/// [`Decomposer`](super::Decomposer) constructs this at the request boundary
/// and threads it through every engine, so no pipeline re-freezes (and batch
/// runs over the same graph share one freeze — see
/// [`FrozenGraph`](super::FrozenGraph)).
///
/// The CSR side is a zero-copy [`CsrRef`], so the *same* engine code runs
/// over owned arrays, an mmap-backed file, or one shard of a
/// [`CsrPartition`](forest_graph::CsrPartition) — storage is erased at this
/// boundary.
#[derive(Clone, Copy, Debug)]
pub struct FrozenInput<'a> {
    /// The original multigraph (centralized baselines and subgraph
    /// extraction need the adjacency-list form).
    pub graph: &'a MultiGraph,
    /// The frozen CSR topology every hot path runs over, borrowed from
    /// whichever storage owns it.
    pub csr: CsrRef<'a>,
}

/// What an engine adapter hands back to the [`Decomposer`](super::Decomposer)
/// for packaging into a [`DecompositionReport`](super::DecompositionReport).
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// The produced artifact.
    pub artifact: Artifact,
    /// The arboricity (or pseudo-arboricity) bound the run was based on.
    pub arboricity: usize,
    /// Colors / forests used.
    pub num_colors: usize,
    /// Maximum tree diameter of the (underlying) decomposition.
    pub max_diameter: usize,
    /// Edges that went through a leftover/recoloring phase.
    pub leftover_edges: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// One algorithm family, adapted to the uniform request/outcome shape.
///
/// This is the seam later subsystems (server, sharding, caching) plug into:
/// implementing the trait and registering the engine is all a new pipeline
/// needs to be reachable from the facade.
pub trait DecompositionEngine: Sync {
    /// The engine this adapter implements.
    fn engine(&self) -> Engine;

    /// Whether the engine can solve `problem` at all.
    fn supports(&self, problem: ProblemKind) -> bool;

    /// Runs the engine on a frozen input. `lists` is `Some` exactly for list
    /// problems (resolved by the `Decomposer` from the request's
    /// [`PaletteSpec`](super::PaletteSpec)).
    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        lists: Option<&ListAssignment>,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError>;
}

/// Returns the adapter for `engine`.
pub(super) fn engine_for(engine: Engine) -> &'static dyn DecompositionEngine {
    match engine {
        Engine::HarrisSuVu => &HarrisSuVuEngine,
        Engine::BarenboimElkin => &BarenboimElkinEngine,
        Engine::Folklore2Alpha => &Folklore2AlphaEngine,
        Engine::ExactMatroid => &ExactMatroidEngine,
    }
}

fn unsupported(problem: ProblemKind, engine: Engine) -> FdError {
    FdError::UnsupportedCombination { problem, engine }
}

fn fd_options(request: &DecompositionRequest) -> FdOptions {
    let mut options = FdOptions::new(request.epsilon);
    options.alpha = request.alpha;
    options.cut = request.cut;
    options.diameter_target = request.diameter_target;
    options.radii = request.radii;
    options
}

fn resolved_alpha(input: FrozenInput<'_>, request: &DecompositionRequest) -> usize {
    request
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(input.graph))
        .max(1)
}

fn simple_view(g: &MultiGraph) -> Result<SimpleGraph, FdError> {
    // Cheap borrowing check first so the error path never pays the clone;
    // eliminating the clone on the success path too needs a borrowing
    // SimpleGraph view in the graph substrate.
    if !g.is_simple() {
        return Err(FdError::NotSimple);
    }
    SimpleGraph::try_from_multigraph(g.clone()).map_err(|_| FdError::NotSimple)
}

fn required_lists(
    lists: Option<&ListAssignment>,
    problem: ProblemKind,
) -> Result<&ListAssignment, FdError> {
    lists.ok_or(FdError::MissingPalettes { problem })
}

fn decomposition_outcome<C: GraphView>(
    csr: &C,
    decomposition: ForestDecomposition,
    arboricity: usize,
    leftover_edges: usize,
    ledger: RoundLedger,
) -> EngineOutcome {
    let num_colors = decomposition.num_colors_used();
    let max_diameter = max_forest_diameter(csr, &decomposition.to_partial());
    EngineOutcome {
        artifact: Artifact::Decomposition(decomposition),
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        ledger,
    }
}

/// Turns a complete forest decomposition into an orientation outcome by
/// rooting every tree and orienting toward the root (Corollary 1.1).
fn orient_outcome<C: GraphView>(csr: &C, outcome: EngineOutcome) -> EngineOutcome {
    let EngineOutcome {
        artifact,
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        mut ledger,
    } = outcome;
    let decomposition = match artifact {
        Artifact::Decomposition(fd) => fd,
        Artifact::Orientation { .. } => unreachable!("orient_outcome takes decompositions"),
    };
    ledger.charge("orient each tree toward its root", max_diameter.max(1));
    let orientation = orientation_from_decomposition(csr, &decomposition);
    let max_out_degree = orientation.max_out_degree(csr);
    EngineOutcome {
        artifact: Artifact::Orientation {
            orientation,
            max_out_degree,
        },
        arboricity,
        num_colors,
        max_diameter,
        leftover_edges,
        ledger,
    }
}

/// The paper's `(1+ε)α` pipelines (Theorems 4.6, 4.10, 5.4, Corollary 1.1).
pub struct HarrisSuVuEngine;

impl HarrisSuVuEngine {
    fn forest(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        let result = forest_decomposition(input.graph, &input.csr, &fd_options(request), rng)?;
        Ok(EngineOutcome {
            artifact: Artifact::Decomposition(result.decomposition),
            arboricity: result.arboricity,
            num_colors: result.num_colors,
            max_diameter: result.max_diameter,
            leftover_edges: result.leftover_edges,
            ledger: result.ledger,
        })
    }
}

impl DecompositionEngine for HarrisSuVuEngine {
    fn engine(&self) -> Engine {
        Engine::HarrisSuVu
    }

    fn supports(&self, _problem: ProblemKind) -> bool {
        true
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        lists: Option<&ListAssignment>,
        rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => self.forest(input, request, rng),
            ProblemKind::Orientation => {
                let forest = self.forest(input, request, rng)?;
                Ok(orient_outcome(&input.csr, forest))
            }
            ProblemKind::ListForest => {
                let lists = required_lists(lists, request.problem)?;
                let result = list_forest_decomposition(
                    input.graph,
                    &input.csr,
                    lists,
                    &fd_options(request),
                    rng,
                )?;
                let decomposition = result.coloring.into_complete()?;
                Ok(EngineOutcome {
                    artifact: Artifact::Decomposition(decomposition),
                    arboricity: result.arboricity,
                    num_colors: result.num_colors,
                    max_diameter: result.max_diameter,
                    leftover_edges: result.leftover_edges,
                    ledger: result.ledger,
                })
            }
            ProblemKind::StarForest => {
                let simple = simple_view(input.graph)?;
                let alpha = resolved_alpha(input, request);
                let config = SfdConfig::new(request.epsilon).with_alpha(alpha);
                let result = star_forest_decomposition_simple(&simple, &input.csr, &config, rng)?;
                Ok(decomposition_outcome(
                    &input.csr,
                    result.decomposition,
                    alpha,
                    result.leftover_edges,
                    result.ledger,
                ))
            }
            ProblemKind::ListStarForest => {
                let lists = required_lists(lists, request.problem)?;
                let simple = simple_view(input.graph)?;
                let alpha = resolved_alpha(input, request);
                let config = SfdConfig::new(request.epsilon).with_alpha(alpha);
                let result = list_star_forest_decomposition_simple(
                    &simple, &input.csr, lists, &config, rng,
                )?;
                Ok(decomposition_outcome(
                    &input.csr,
                    result.decomposition,
                    alpha,
                    result.leftover_edges,
                    result.ledger,
                ))
            }
        }
    }
}

/// The `(2+ε)α*` H-partition baseline [BE10].
pub struct BarenboimElkinEngine;

impl BarenboimElkinEngine {
    fn forest(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
    ) -> Result<EngineOutcome, FdError> {
        let bound = request
            .alpha
            .unwrap_or_else(|| forest_graph::orientation::pseudoarboricity(&input.csr))
            .max(1);
        let mut ledger = RoundLedger::new();
        let baseline =
            barenboim_elkin_forest_decomposition(&input.csr, request.epsilon, bound, &mut ledger)?;
        Ok(decomposition_outcome(
            &input.csr,
            baseline.decomposition,
            bound,
            0,
            ledger,
        ))
    }
}

impl DecompositionEngine for BarenboimElkinEngine {
    fn engine(&self) -> Engine {
        Engine::BarenboimElkin
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => self.forest(input, request),
            ProblemKind::Orientation => {
                let forest = self.forest(input, request)?;
                Ok(orient_outcome(&input.csr, forest))
            }
            other => Err(unsupported(other, self.engine())),
        }
    }
}

/// The folklore `α_star ≤ 2α` construction: exact decomposition plus
/// depth-parity two-coloring.
pub struct Folklore2AlphaEngine;

impl DecompositionEngine for Folklore2AlphaEngine {
    fn engine(&self) -> Engine {
        Engine::Folklore2Alpha
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::StarForest)
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        if request.problem != ProblemKind::StarForest {
            return Err(unsupported(request.problem, self.engine()));
        }
        let exact = forest_graph::matroid::exact_forest_decomposition(input.graph);
        let stars = two_color_star_forests(&input.csr, &exact.decomposition);
        let mut ledger = RoundLedger::new();
        ledger.charge(
            "centralized exact decomposition + two-coloring (non-LOCAL)",
            0,
        );
        Ok(decomposition_outcome(
            &input.csr,
            stars,
            exact.arboricity,
            0,
            ledger,
        ))
    }
}

/// The centralized Gabow–Westermann matroid partition (exact `α`).
pub struct ExactMatroidEngine;

impl ExactMatroidEngine {
    fn forest(&self, input: FrozenInput<'_>) -> EngineOutcome {
        let exact = forest_graph::matroid::exact_forest_decomposition(input.graph);
        let mut ledger = RoundLedger::new();
        ledger.charge("centralized matroid partition (non-LOCAL)", 0);
        decomposition_outcome(&input.csr, exact.decomposition, exact.arboricity, 0, ledger)
    }
}

impl DecompositionEngine for ExactMatroidEngine {
    fn engine(&self) -> Engine {
        Engine::ExactMatroid
    }

    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
    }

    fn execute(
        &self,
        input: FrozenInput<'_>,
        request: &DecompositionRequest,
        _lists: Option<&ListAssignment>,
        _rng: &mut SmallRng,
    ) -> Result<EngineOutcome, FdError> {
        match request.problem {
            ProblemKind::Forest => Ok(self.forest(input)),
            ProblemKind::Orientation => Ok(orient_outcome(&input.csr, self.forest(input))),
            other => Err(unsupported(other, self.engine())),
        }
    }
}
