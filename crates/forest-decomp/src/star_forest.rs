//! Star-forest decomposition of simple graphs (Section 5, Theorem 5.4).
//!
//! Given a `t`-orientation with `t = ⌈(1+ε)α⌉`, every vertex `v` samples a
//! color set `C(v)` and builds the bipartite graph `H_v` whose left side is
//! the color space and right side its out-neighbors, with an edge `(i, u)`
//! whenever `i ∈ C(v) \ C(u)` (and, for lists, `i ∈ Q(vu)`). A matching in
//! `H_v` colors the matched out-edges so that every color class is a union of
//! stars centered at the vertices *missing* that color (Proposition 5.1).
//! Lemma 5.2 (ordinary colors, `α ≥ Ω(√log Δ + log α)`) and Lemma 5.3
//! (lists, `α ≥ Ω(log Δ)`) show the random sets make `H_v` have an
//! (almost-)perfect matching w.h.p., and an LLL pass fixes the rare failures.
//! The small leftover of unmatched edges is recolored with `O(εα)` extra star
//! forests via Theorem 2.1.
//!
//! These constructions also prove the star-arboricity bounds of
//! Corollary 1.2: `α_star ≤ α + O(√log Δ + log α)` and
//! `α_liststar ≤ α + O(log Δ)` for simple graphs.

use crate::error::{check_epsilon, FdError};
use crate::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use crate::matching::maximum_bipartite_matching;
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::orientation::bounded_outdegree_orientation;
use forest_graph::{
    Color, EdgeId, ForestDecomposition, GraphView, ListAssignment, Orientation, SimpleGraph,
    VertexId,
};
use local_model::rounds::costs;
use local_model::RoundLedger;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the star-forest decomposition.
#[derive(Clone, Debug)]
pub struct SfdConfig {
    /// Slack parameter `ε`.
    pub epsilon: f64,
    /// Arboricity bound (`None` = compute exactly with the matroid baseline).
    pub alpha: Option<usize>,
    /// Maximum number of LLL resampling rounds before giving up on the
    /// remaining bad vertices (their edges join the leftover).
    pub max_lll_rounds: usize,
}

impl SfdConfig {
    /// Default configuration for the given `ε`.
    pub fn new(epsilon: f64) -> Self {
        SfdConfig {
            epsilon,
            alpha: None,
            max_lll_rounds: 64,
        }
    }

    /// Fixes the arboricity bound instead of computing it exactly.
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        self.alpha = Some(alpha);
        self
    }
}

/// Result of a star-forest decomposition.
#[derive(Clone, Debug)]
pub struct StarForestResult {
    /// The decomposition (every color class is a star forest).
    pub decomposition: ForestDecomposition,
    /// Number of distinct colors used in total.
    pub num_colors: usize,
    /// The primary color budget `t = ⌈(1+ε)α⌉` of the matching phase.
    pub primary_colors: usize,
    /// Number of edges left unmatched by the matching phase and recolored
    /// with extra colors.
    pub leftover_edges: usize,
    /// Number of LLL resampling rounds used.
    pub lll_rounds: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// Per-vertex sampled color sets, stored as dense bitmasks over the
/// colorspace index (so membership tests inside the matching loops are O(1)
/// array reads instead of hash probes).
type ColorSets = Vec<Vec<bool>>;

fn matching_for_vertex<G: GraphView>(
    g: &G,
    orientation: &Orientation,
    color_sets: &ColorSets,
    lists: Option<&ListAssignment>,
    colorspace: &[Color],
    v: VertexId,
) -> (Vec<EdgeId>, Vec<Option<Color>>) {
    let out_edges = orientation.out_edges(g, v);
    // Left side: the colorspace indices; right side: the out-edges.
    let adj: Vec<Vec<usize>> = out_edges
        .iter()
        .map(|&e| {
            let u = orientation.head(g, e);
            colorspace
                .iter()
                .enumerate()
                .filter(|&(i, &c)| {
                    color_sets[v.index()][i]
                        && !color_sets[u.index()][i]
                        && lists.is_none_or(|l| l.contains(e, c))
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let matching = maximum_bipartite_matching(out_edges.len(), colorspace.len(), &adj);
    let colors = (0..out_edges.len())
        .map(|i| matching.pair_left[i].map(|ci| colorspace[ci]))
        .collect();
    (out_edges, colors)
}

/// Internal driver shared by the ordinary and list variants.
#[allow(clippy::too_many_arguments)]
fn star_forest_by_matching<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    orientation: &Orientation,
    colorspace: &[Color],
    lists: Option<&ListAssignment>,
    allowed_deficiency: usize,
    sample_color_set: &mut dyn FnMut(&mut R, VertexId) -> Vec<bool>,
    max_lll_rounds: usize,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> (PartialEdgeColoring, usize, usize) {
    let n = g.num_vertices();
    let mut color_sets: ColorSets = g.vertices().map(|v| sample_color_set(rng, v)).collect();
    // LLL loop: a vertex is "bad" if its matching misses more than
    // `allowed_deficiency` of its out-edges.
    let mut lll_rounds = 0usize;
    loop {
        let bad: Vec<VertexId> = g
            .vertices()
            .filter(|&v| {
                let (out_edges, colors) =
                    matching_for_vertex(g, orientation, &color_sets, lists, colorspace, v);
                let matched = colors.iter().filter(|c| c.is_some()).count();
                matched + allowed_deficiency < out_edges.len()
            })
            .collect();
        if bad.is_empty() || lll_rounds >= max_lll_rounds {
            break;
        }
        for &v in &bad {
            color_sets[v.index()] = sample_color_set(rng, v);
        }
        lll_rounds += 1;
    }
    ledger.charge(
        "star-forest LLL color-set sampling",
        costs::lll(n, 2).max(lll_rounds.max(1) * 2),
    );
    // Proposition 5.1: apply the matchings.
    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
    let mut leftover = 0usize;
    for v in g.vertices() {
        let (out_edges, colors) =
            matching_for_vertex(g, orientation, &color_sets, lists, colorspace, v);
        for (i, &e) in out_edges.iter().enumerate() {
            match colors[i] {
                Some(c) => coloring.set(e, c),
                None => leftover += 1,
            }
        }
    }
    // Applying the matchings is a single LOCAL round (each vertex colors its
    // own out-edges).
    ledger.charge("apply per-vertex matchings", 1);
    (coloring, leftover, lll_rounds)
}

/// Theorem 5.4(1): `(1+O(ε))α`-star-forest decomposition of a simple graph,
/// over the frozen topology `csr` (which must equal
/// `CsrGraph::from_multigraph(g.graph())`; the `Decomposer` facade freezes
/// once per request and threads the pair through).
///
/// # Errors
///
/// Returns an error for invalid `ε` or if the leftover recoloring fails.
pub(crate) fn star_forest_decomposition_simple<C: GraphView, R: Rng + ?Sized>(
    g: &SimpleGraph,
    csr: &C,
    config: &SfdConfig,
    rng: &mut R,
) -> Result<StarForestResult, FdError> {
    check_epsilon(config.epsilon)?;
    let graph = g.graph();
    let mut ledger = RoundLedger::new();
    if graph.num_edges() == 0 {
        return Ok(StarForestResult {
            decomposition: ForestDecomposition::from_colors(Vec::new()),
            num_colors: 0,
            primary_colors: 0,
            leftover_edges: 0,
            lll_rounds: 0,
            ledger,
        });
    }
    let alpha = config
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(graph))
        .max(1);
    let t = ((1.0 + config.epsilon) * alpha as f64).ceil() as usize;
    // The t-orientation: the paper uses the Su–Vu CONGEST algorithm
    // (O~(log^2 n / eps^2) rounds); we take the exact flow orientation and
    // charge the same round budget.
    let orientation =
        bounded_outdegree_orientation(csr, t).ok_or(FdError::ArboricityBoundTooSmall {
            bound: alpha,
            required: forest_graph::orientation::pseudoarboricity(csr),
        })?;
    let n = graph.num_vertices();
    let log_n = costs::log2_ceil(n).max(1);
    ledger.charge(
        "t-orientation (Su-Vu style)",
        (log_n * log_n) as usize * ((1.0 / (config.epsilon * config.epsilon)).ceil() as usize),
    );
    let colorspace: Vec<Color> = (0..t).map(Color::new).collect();
    let subset_size = alpha.min(t);
    let allowed_deficiency = (2.0 * config.epsilon * alpha as f64).ceil() as usize;
    let indices: Vec<usize> = (0..t).collect();
    let mut sample = |rng: &mut R, _v: VertexId| -> Vec<bool> {
        let mut mask = vec![false; t];
        for &i in indices.choose_multiple(rng, subset_size) {
            mask[i] = true;
        }
        mask
    };
    let (mut coloring, leftover_edges, lll_rounds) = star_forest_by_matching(
        csr,
        &orientation,
        &colorspace,
        None,
        allowed_deficiency,
        &mut sample,
        config.max_lll_rounds,
        rng,
        &mut ledger,
    );
    // Recolor the leftover (unmatched) edges as star forests with fresh
    // colors via Theorem 2.1.
    let any_leftover = csr.edge_ids().any(|e| coloring.color(e).is_none());
    if any_leftover {
        let (sub, back) = graph.edge_subgraph(|e| coloring.color(e).is_none());
        let pseudo = forest_graph::orientation::pseudoarboricity(&sub).max(1);
        let hp = h_partition(&sub, 0.5, pseudo, &mut ledger)?;
        let sub_orientation = acyclic_orientation(&sub, &hp);
        let sfd = star_forest_decomposition(&sub, &sub_orientation, &mut ledger);
        for (i, &orig) in back.iter().enumerate() {
            coloring.set(orig, Color::new(t + sfd.color(EdgeId::new(i)).index()));
        }
    }
    let decomposition = coloring.into_complete()?;
    let num_colors = decomposition.num_colors_used();
    Ok(StarForestResult {
        decomposition,
        num_colors,
        primary_colors: t,
        leftover_edges,
        lll_rounds,
        ledger,
    })
}

/// Theorem 5.4(2): `(1+O(ε))α`-list-star-forest decomposition of a simple
/// graph whose palettes have at least `(1 + 200ε)α`-ish colors (Lemma 5.3),
/// over the frozen topology `csr` (see
/// [`star_forest_decomposition_simple`]).
///
/// # Errors
///
/// Returns an error for invalid `ε`, or [`FdError::NotConverged`] if some
/// vertex never obtains a perfect matching and its unmatched edges cannot be
/// finished greedily from their palettes.
pub(crate) fn list_star_forest_decomposition_simple<C: GraphView, R: Rng + ?Sized>(
    g: &SimpleGraph,
    csr: &C,
    lists: &ListAssignment,
    config: &SfdConfig,
    rng: &mut R,
) -> Result<StarForestResult, FdError> {
    check_epsilon(config.epsilon)?;
    let graph = g.graph();
    let mut ledger = RoundLedger::new();
    if graph.num_edges() == 0 {
        return Ok(StarForestResult {
            decomposition: ForestDecomposition::from_colors(Vec::new()),
            num_colors: 0,
            primary_colors: 0,
            leftover_edges: 0,
            lll_rounds: 0,
            ledger,
        });
    }
    let alpha = config
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(graph))
        .max(1);
    let t = ((1.0 + config.epsilon) * alpha as f64).ceil() as usize;
    let orientation =
        bounded_outdegree_orientation(csr, t).ok_or(FdError::ArboricityBoundTooSmall {
            bound: alpha,
            required: forest_graph::orientation::pseudoarboricity(csr),
        })?;
    let n = graph.num_vertices();
    let log_n = costs::log2_ceil(n).max(1);
    ledger.charge(
        "t-orientation (Su-Vu style)",
        (log_n * log_n) as usize * ((1.0 / (config.epsilon * config.epsilon)).ceil() as usize),
    );
    // The colorspace is the union of the palettes; C(u) keeps each color
    // independently with probability 1 - eps (Lemma 5.3).
    let mut colorspace: Vec<Color> = (0..lists.num_edges())
        .flat_map(|i| lists.palette(EdgeId::new(i)).to_vec())
        .collect();
    colorspace.sort_unstable();
    colorspace.dedup();
    let keep_probability = 1.0 - config.epsilon;
    let colorspace_len = colorspace.len();
    let mut sample = move |rng: &mut R, _v: VertexId| -> Vec<bool> {
        (0..colorspace_len)
            .map(|_| rng.gen_bool(keep_probability))
            .collect()
    };
    let (mut coloring, mut leftover_edges, lll_rounds) = star_forest_by_matching(
        csr,
        &orientation,
        &colorspace,
        Some(lists),
        0,
        &mut sample,
        config.max_lll_rounds,
        rng,
        &mut ledger,
    );
    // In the list setting there is no budget for fresh colors; finish any
    // unmatched edge greedily with a palette color unused by every edge
    // incident to either endpoint (which keeps every class a star forest).
    let unmatched: Vec<EdgeId> = csr
        .edge_ids()
        .filter(|&e| coloring.color(e).is_none())
        .collect();
    for e in unmatched {
        let (u, v) = csr.endpoints(e);
        let neighbor_colors: HashSet<Color> = csr
            .incident_edges(u)
            .chain(csr.incident_edges(v))
            .filter_map(|x| coloring.color(x))
            .collect();
        let choice = lists
            .palette(e)
            .iter()
            .copied()
            .find(|c| !neighbor_colors.contains(c));
        match choice {
            Some(c) => {
                coloring.set(e, c);
                leftover_edges += 1;
            }
            None => {
                return Err(FdError::NotConverged {
                    phase: format!("list star-forest: edge {e} has no conflict-free color"),
                })
            }
        }
    }
    ledger.charge("greedy completion of unmatched edges", 1);
    let decomposition = coloring.into_complete()?;
    let num_colors = decomposition.num_colors_used();
    Ok(StarForestResult {
        decomposition,
        num_colors,
        primary_colors: t,
        leftover_edges,
        lll_rounds,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{validate_list_coloring, validate_star_forest_decomposition};
    use forest_graph::{generators, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sfd_on_planted_simple_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_simple_arboricity(60, 4, &mut rng);
        let alpha = forest_graph::matroid::arboricity(g.graph());
        let config = SfdConfig::new(0.5).with_alpha(alpha);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result = star_forest_decomposition_simple(&g, &csr, &config, &mut rng).unwrap();
        validate_star_forest_decomposition(g.graph(), &result.decomposition, None)
            .expect("star forests");
        // The color budget: t primary colors plus O(eps alpha) recolored ones;
        // generous sanity bound of 3 alpha + 6.
        assert!(
            result.num_colors <= 3 * alpha + 6,
            "too many colors: {} for alpha {alpha}",
            result.num_colors
        );
        assert!(result.primary_colors >= alpha);
    }

    #[test]
    fn sfd_on_dense_clique() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SimpleGraph::try_from_multigraph(generators::complete_graph(12)).unwrap();
        let config = SfdConfig::new(0.4);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result = star_forest_decomposition_simple(&g, &csr, &config, &mut rng).unwrap();
        validate_star_forest_decomposition(g.graph(), &result.decomposition, None)
            .expect("star forests");
        // Sanity bound: stay within 3 alpha colors on K12 (alpha = 6); the
        // tight Corollary 1.2 comparison is measured by the benchmark harness.
        assert!(result.num_colors <= 18, "colors = {}", result.num_colors);
    }

    #[test]
    fn sfd_handles_trees_with_one_color_plus_slack() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = generators::random_tree(80, &mut rng);
        let g = SimpleGraph::try_from_multigraph(tree).unwrap();
        let config = SfdConfig::new(0.5).with_alpha(1);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result = star_forest_decomposition_simple(&g, &csr, &config, &mut rng).unwrap();
        validate_star_forest_decomposition(g.graph(), &result.decomposition, None)
            .expect("star forests");
        // alpha = 1: a star forest decomposition with O(1) colors.
        assert!(result.num_colors <= 9, "colors = {}", result.num_colors);
    }

    #[test]
    fn sfd_empty_graph() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = SimpleGraph::new(5);
        let config = SfdConfig::new(0.3);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result = star_forest_decomposition_simple(&g, &csr, &config, &mut rng).unwrap();
        assert_eq!(result.num_colors, 0);
    }

    #[test]
    fn lsfd_respects_palettes_and_star_property() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::planted_simple_arboricity(50, 3, &mut rng);
        let alpha = forest_graph::matroid::arboricity(g.graph());
        // Lemma 5.3 wants palettes of size alpha(1 + 200 eps); with the small
        // test instance we simply hand out a comfortable palette from a larger
        // color space.
        let palette_size = 3 * alpha + 6;
        let lists = ListAssignment::random(
            g.graph().num_edges(),
            2 * palette_size,
            palette_size,
            &mut rng,
        );
        let config = SfdConfig::new(0.2).with_alpha(alpha);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result =
            list_star_forest_decomposition_simple(&g, &csr, &lists, &config, &mut rng).unwrap();
        validate_star_forest_decomposition(g.graph(), &result.decomposition, None)
            .expect("star forests");
        validate_list_coloring(g.graph(), &result.decomposition.to_partial(), &lists)
            .expect("palettes respected");
    }

    #[test]
    fn lsfd_fails_gracefully_on_hopeless_palettes() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = SimpleGraph::try_from_multigraph(generators::complete_graph(8)).unwrap();
        // A single shared color cannot star-decompose K8.
        let lists = ListAssignment::uniform(g.graph().num_edges(), 1);
        let config = SfdConfig::new(0.2).with_alpha(4);
        let csr = CsrGraph::from_multigraph(g.graph());
        let result = list_star_forest_decomposition_simple(&g, &csr, &lists, &config, &mut rng);
        assert!(result.is_err());
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = SimpleGraph::new(3);
        let config = SfdConfig::new(0.0);
        let csr = CsrGraph::from_multigraph(g.graph());
        assert!(star_forest_decomposition_simple(&g, &csr, &config, &mut rng).is_err());
    }
}
