//! Low out-degree orientations from forest decompositions (Corollary 1.1).
//!
//! A `(1+ε)α`-forest decomposition of diameter `D` yields a
//! `(1+ε)α`-orientation in `O(D)` extra rounds: root every tree and orient
//! every edge toward its root, so each vertex has at most one out-edge per
//! color. This gives the first `(1+ε)α`-orientation algorithms with a linear
//! dependence on `1/ε`.

use forest_graph::traversal::root_forest;
use forest_graph::{EdgeId, ForestDecomposition, GraphView, Orientation};

/// Orients every edge of a complete forest decomposition toward the root of
/// its tree (per color class). The resulting out-degree of a vertex is at
/// most the number of colors, since it has at most one parent edge per color.
pub fn orientation_from_decomposition<G: GraphView>(
    g: &G,
    decomposition: &ForestDecomposition,
) -> Orientation {
    let mut tails = vec![None; g.num_edges()];
    let mut in_class = vec![false; g.num_edges()];
    for c in decomposition.colors_used() {
        let class = decomposition.edges_with_color(c);
        for &e in &class {
            in_class[e.index()] = true;
        }
        let rooted = root_forest(g, |e| in_class[e.index()], |_| 0);
        for v in g.vertices() {
            if let Some(pe) = rooted.parent_edge[v.index()] {
                if in_class[pe.index()] {
                    // The edge points from the child v toward its parent.
                    tails[pe.index()] = Some(v);
                }
            }
        }
        for &e in &class {
            in_class[e.index()] = false;
        }
    }
    let tails: Vec<_> = tails
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.unwrap_or_else(|| g.endpoints(EdgeId::new(i)).0))
        .collect();
    Orientation::from_tails(g, tails).expect("tails are endpoints by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::{generators, matroid, MultiGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orientation_from_exact_decomposition_bounds_outdegree_by_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(50, 3, &mut rng);
        let exact = matroid::exact_forest_decomposition(&g);
        let orientation = orientation_from_decomposition(&g, &exact.decomposition);
        assert!(orientation.max_out_degree(&g) <= exact.arboricity);
        // Every edge got a tail that is one of its endpoints (checked by
        // construction in Orientation::from_tails).
        assert_eq!(
            orientation.out_degrees(&g).iter().sum::<usize>(),
            g.num_edges()
        );
    }

    #[test]
    fn orientation_on_fat_path() {
        let g = generators::fat_path(30, 4);
        let exact = matroid::exact_forest_decomposition(&g);
        let orientation = orientation_from_decomposition(&g, &exact.decomposition);
        assert!(orientation.max_out_degree(&g) <= exact.arboricity);
    }

    #[test]
    fn orientation_of_empty_graph() {
        let g = MultiGraph::new(4);
        let fd = ForestDecomposition::from_colors(Vec::new());
        let orientation = orientation_from_decomposition(&g, &fd);
        assert_eq!(orientation.max_out_degree(&g), 0);
    }
}
