//! Low out-degree orientations from forest decompositions (Corollary 1.1).
//!
//! A `(1+ε)α`-forest decomposition of diameter `D` yields a
//! `(1+ε)α`-orientation in `O(D)` extra rounds: root every tree and orient
//! every edge toward its root, so each vertex has at most one out-edge per
//! color. This gives the first `(1+ε)α`-orientation algorithms with a linear
//! dependence on `1/ε`.

#[allow(deprecated)]
use crate::combine::forest_decomposition;
use crate::combine::FdOptions;
use crate::error::FdError;
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::traversal::root_forest;
use forest_graph::{EdgeId, ForestDecomposition, MultiGraph, Orientation};
use local_model::RoundLedger;
use rand::Rng;
use std::collections::HashSet;

/// Orients every edge of a complete forest decomposition toward the root of
/// its tree (per color class). The resulting out-degree of a vertex is at
/// most the number of colors, since it has at most one parent edge per color.
pub fn orientation_from_decomposition(
    g: &MultiGraph,
    decomposition: &ForestDecomposition,
) -> Orientation {
    let mut tails = vec![None; g.num_edges()];
    for c in decomposition.colors_used() {
        let class: HashSet<EdgeId> = decomposition.edges_with_color(c).into_iter().collect();
        let rooted = root_forest(g, |e| class.contains(&e), |_| 0);
        for v in g.vertices() {
            if let Some(pe) = rooted.parent_edge[v.index()] {
                if class.contains(&pe) {
                    // The edge points from the child v toward its parent.
                    tails[pe.index()] = Some(v);
                }
            }
        }
    }
    let tails: Vec<_> = tails
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.unwrap_or_else(|| g.endpoints(EdgeId::new(i)).0))
        .collect();
    Orientation::from_tails(g, tails).expect("tails are endpoints by construction")
}

/// Result of the end-to-end `(1+ε)α`-orientation (Corollary 1.1).
#[derive(Clone, Debug)]
pub struct OrientationResult {
    /// The orientation.
    pub orientation: Orientation,
    /// Maximum out-degree achieved.
    pub max_out_degree: usize,
    /// Number of forests of the underlying decomposition.
    pub num_forests: usize,
    /// Diameter of the underlying decomposition (the orientation step costs
    /// `O(diameter)` extra rounds).
    pub forest_diameter: usize,
    /// Round accounting (decomposition plus orientation).
    pub ledger: RoundLedger,
}

/// Corollary 1.1: computes a `(1+O(ε))α`-orientation by running the forest
/// decomposition pipeline of Theorem 4.6 and orienting each tree toward its
/// root.
///
/// # Errors
///
/// Propagates errors from the decomposition pipeline.
#[deprecated(
    since = "0.2.0",
    note = "use api::Decomposer with ProblemKind::Orientation + Engine::HarrisSuVu"
)]
pub fn low_outdegree_orientation<R: Rng + ?Sized>(
    g: &MultiGraph,
    options: &FdOptions,
    rng: &mut R,
) -> Result<OrientationResult, FdError> {
    #[allow(deprecated)]
    let result = forest_decomposition(g, options, rng)?;
    let mut ledger = result.ledger.clone();
    let diameter = max_forest_diameter(g, &result.decomposition.to_partial());
    ledger.charge("orient each tree toward its root", diameter.max(1));
    let orientation = orientation_from_decomposition(g, &result.decomposition);
    Ok(OrientationResult {
        max_out_degree: orientation.max_out_degree(g),
        orientation,
        num_forests: result.num_colors,
        forest_diameter: diameter,
        ledger,
    })
}

#[cfg(test)]
#[allow(deprecated)] // unit tests exercise the historical entrypoints directly
mod tests {
    use super::*;
    use forest_graph::{generators, matroid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orientation_from_exact_decomposition_bounds_outdegree_by_alpha() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(50, 3, &mut rng);
        let exact = matroid::exact_forest_decomposition(&g);
        let orientation = orientation_from_decomposition(&g, &exact.decomposition);
        assert!(orientation.max_out_degree(&g) <= exact.arboricity);
        // Every edge got a tail that is one of its endpoints (checked by
        // construction in Orientation::from_tails).
        assert_eq!(
            orientation.out_degrees(&g).iter().sum::<usize>(),
            g.num_edges()
        );
    }

    #[test]
    fn orientation_on_fat_path() {
        let g = generators::fat_path(30, 4);
        let exact = matroid::exact_forest_decomposition(&g);
        let orientation = orientation_from_decomposition(&g, &exact.decomposition);
        assert!(orientation.max_out_degree(&g) <= exact.arboricity);
    }

    #[test]
    fn end_to_end_orientation_close_to_alpha() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::planted_forest_union(40, 4, &mut rng);
        let alpha = matroid::arboricity(&g);
        let options = FdOptions::new(0.5);
        let result = low_outdegree_orientation(&g, &options, &mut rng).unwrap();
        // (1 + O(eps)) alpha out-degree: allow the pipeline's extra colors.
        assert!(
            result.max_out_degree <= 2 * alpha + 2,
            "out-degree {} vs alpha {alpha}",
            result.max_out_degree
        );
        assert!(result.num_forests >= alpha);
        assert!(result.ledger.total_rounds() > 0);
    }

    #[test]
    fn orientation_of_empty_graph() {
        let g = MultiGraph::new(4);
        let fd = ForestDecomposition::from_colors(Vec::new());
        let orientation = orientation_from_decomposition(&g, &fd);
        assert_eq!(orientation.max_out_degree(&g), 0);
    }
}
