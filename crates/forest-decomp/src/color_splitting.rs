//! Vertex-color-splitting (Definition 4.7, Proposition 4.8, Theorem 4.9).
//!
//! For the list version of the main theorem the color space must be split
//! *per vertex* into two sides `C_{v,0} ⊔ C_{v,1}`: side 0 feeds the main
//! augmentation pipeline, side 1 is reserved as back-up colors for the
//! leftover edges. The induced palettes are
//! `Q_i(uv) = Q(uv) ∩ C_{u,i} ∩ C_{v,i}`, and Proposition 4.8 shows that any
//! two list-forest decompositions built on the two sides combine into one.
//!
//! Theorem 4.9 gives two randomized constructions:
//! 1. (for `α ≥ Ω(log n)`) one MPX partial network decomposition per color,
//!    with each cluster flipping a biased coin for the whole cluster;
//! 2. (for `ε²α ≥ Ω(log Δ)`) fully independent per-(vertex, color) coins,
//!    repaired with the Lovász Local Lemma when some edge's induced palettes
//!    come out too small.

use crate::error::{check_epsilon, FdError};
use forest_graph::{Color, EdgeId, ListAssignment, MultiGraph, VertexId};
use local_model::rounds::costs;
use local_model::{partial_network_decomposition, RoundLedger};
use rand::Rng;
use std::collections::HashSet;

/// A per-vertex split of the color space into side 0 and side 1.
#[derive(Clone, Debug)]
pub struct VertexColorSplitting {
    /// For each vertex, the colors assigned to side 1 (`C_{v,1}`); every
    /// other color is on side 0.
    pub side1: Vec<HashSet<Color>>,
}

impl VertexColorSplitting {
    /// Which side color `c` is on at vertex `v` (0 or 1).
    pub fn side(&self, v: VertexId, c: Color) -> usize {
        usize::from(self.side1[v.index()].contains(&c))
    }

    /// The induced palettes `Q_i(uv) = Q(uv) ∩ C_{u,i} ∩ C_{v,i}`.
    pub fn induced_lists(
        &self,
        g: &MultiGraph,
        lists: &ListAssignment,
        side: usize,
    ) -> ListAssignment {
        lists.filter(|e, c| {
            let (u, v) = g.endpoints(e);
            self.side(u, c) == side && self.side(v, c) == side
        })
    }

    /// The splitting sizes `(k_0, k_1)`: the minimum induced palette size on
    /// each side.
    pub fn sizes(&self, g: &MultiGraph, lists: &ListAssignment) -> (usize, usize) {
        (
            self.induced_lists(g, lists, 0).min_palette_size(),
            self.induced_lists(g, lists, 1).min_palette_size(),
        )
    }
}

fn all_colors(lists: &ListAssignment) -> Vec<Color> {
    let mut colors: Vec<Color> = (0..lists.num_edges())
        .flat_map(|i| lists.palette(EdgeId::new(i)).to_vec())
        .collect();
    colors.sort_unstable();
    colors.dedup();
    colors
}

/// Theorem 4.9(1): per-color MPX clustering with a biased per-cluster coin.
/// Intended for `α ≥ Ω(log n)`; always returns a valid splitting, whose sizes
/// the caller should check via [`VertexColorSplitting::sizes`].
///
/// # Errors
///
/// Returns an error for an invalid `ε`.
pub fn split_colors_clustered<R: Rng + ?Sized>(
    g: &MultiGraph,
    lists: &ListAssignment,
    epsilon: f64,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> Result<VertexColorSplitting, FdError> {
    check_epsilon(epsilon)?;
    let beta = (epsilon / 10.0).clamp(1e-6, 1.0);
    let mut side1: Vec<HashSet<Color>> = vec![HashSet::new(); g.num_vertices()];
    for c in all_colors(lists) {
        let clustering = partial_network_decomposition(g, beta, rng, ledger);
        // One biased coin per cluster center.
        let mut center_side1: std::collections::HashMap<VertexId, bool> =
            std::collections::HashMap::new();
        for v in g.vertices() {
            let center = clustering.center_of[v.index()];
            let goes_to_side1 = *center_side1
                .entry(center)
                .or_insert_with(|| rng.gen_bool((epsilon / 10.0).clamp(0.0, 1.0)));
            if goes_to_side1 {
                side1[v.index()].insert(c);
            }
        }
    }
    Ok(VertexColorSplitting { side1 })
}

/// Theorem 4.9(2): fully independent per-(vertex, color) coins, with an
/// LLL-style repair loop that resamples the vertices incident to edges whose
/// induced palettes are below the targets `(k0_target, k1_target)`.
/// Intended for `ε²α ≥ Ω(log Δ)`.
///
/// # Errors
///
/// Returns [`FdError::NotConverged`] if the repair loop cannot reach the
/// targets within `max_rounds` rounds (the targets are then unachievable or
/// the precondition on `α` is badly violated).
#[allow(clippy::too_many_arguments)]
pub fn split_colors_independent<R: Rng + ?Sized>(
    g: &MultiGraph,
    lists: &ListAssignment,
    epsilon: f64,
    k0_target: usize,
    k1_target: usize,
    max_rounds: usize,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> Result<VertexColorSplitting, FdError> {
    check_epsilon(epsilon)?;
    let p_side1 = (epsilon / 10.0).clamp(0.0, 1.0);
    let colors = all_colors(lists);
    let resample = |rng: &mut R, side1: &mut HashSet<Color>| {
        side1.clear();
        for &c in &colors {
            if rng.gen_bool(p_side1) {
                side1.insert(c);
            }
        }
    };
    let mut splitting = VertexColorSplitting {
        side1: vec![HashSet::new(); g.num_vertices()],
    };
    for v in g.vertices() {
        resample(rng, &mut splitting.side1[v.index()]);
    }
    let edge_ok = |splitting: &VertexColorSplitting, e: EdgeId| -> bool {
        let (u, v) = g.endpoints(e);
        let mut q0 = 0usize;
        let mut q1 = 0usize;
        for &c in lists.palette(e) {
            let su = splitting.side(u, c);
            let sv = splitting.side(v, c);
            if su == 0 && sv == 0 {
                q0 += 1;
            } else if su == 1 && sv == 1 {
                q1 += 1;
            }
        }
        q0 >= k0_target && q1 >= k1_target
    };
    let mut rounds = 0usize;
    loop {
        let bad: Vec<EdgeId> = g.edge_ids().filter(|&e| !edge_ok(&splitting, e)).collect();
        if bad.is_empty() {
            break;
        }
        if rounds >= max_rounds {
            ledger.charge(
                "vertex-color splitting (LLL repair)",
                costs::lll(g.num_vertices(), 1),
            );
            return Err(FdError::NotConverged {
                phase: format!(
                    "vertex-color splitting: {} edges below targets ({k0_target}, {k1_target})",
                    bad.len()
                ),
            });
        }
        // Resample in ascending vertex order: the RNG draws below must not
        // depend on hash-set iteration order, or the same seed would produce
        // different splittings across runs.
        let mut to_resample: Vec<VertexId> = Vec::with_capacity(2 * bad.len());
        for e in bad {
            let (u, v) = g.endpoints(e);
            to_resample.push(u);
            to_resample.push(v);
        }
        to_resample.sort_unstable();
        to_resample.dedup();
        for v in to_resample {
            resample(rng, &mut splitting.side1[v.index()]);
        }
        rounds += 1;
    }
    ledger.charge(
        "vertex-color splitting (LLL repair)",
        costs::lll(g.num_vertices(), 1).max(rounds),
    );
    Ok(splitting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn induced_lists_partition_each_palette() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(30, 4, &mut rng);
        let lists = ListAssignment::uniform(g.num_edges(), 20);
        let mut ledger = RoundLedger::new();
        let splitting = split_colors_clustered(&g, &lists, 0.4, &mut rng, &mut ledger).unwrap();
        let q0 = splitting.induced_lists(&g, &lists, 0);
        let q1 = splitting.induced_lists(&g, &lists, 1);
        for e in g.edge_ids() {
            // Q0 and Q1 are disjoint and contained in Q.
            let s0: HashSet<Color> = q0.palette(e).iter().copied().collect();
            let s1: HashSet<Color> = q1.palette(e).iter().copied().collect();
            assert!(s0.is_disjoint(&s1));
            assert!(s0.len() + s1.len() <= lists.palette(e).len());
        }
        // Side 0 keeps the lion's share of every palette.
        let (k0, _k1) = splitting.sizes(&g, &lists);
        assert!(k0 >= 10, "side-0 palettes too small: {k0}");
    }

    #[test]
    fn clustered_split_assigns_whole_clusters() {
        // With one color and a connected graph, a cluster is monochromatic in
        // its side assignment; verify sides are consistent per cluster by
        // checking that the split is deterministic per (vertex, color) lookup.
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::grid(5, 5);
        let lists = ListAssignment::uniform(g.num_edges(), 1);
        let mut ledger = RoundLedger::new();
        let splitting = split_colors_clustered(&g, &lists, 0.3, &mut rng, &mut ledger).unwrap();
        for v in g.vertices() {
            let s = splitting.side(v, Color::new(0));
            assert!(s == 0 || s == 1);
        }
    }

    #[test]
    fn independent_split_reaches_targets_with_large_palettes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_forest_union(40, 3, &mut rng);
        // Theorem 4.9(2) needs eps^2 * |Q| = Omega(log Delta): a color on side
        // 1 of an *edge* requires both endpoints to pick it (probability
        // (eps/10)^2 each), so the palettes must be large for k1 >= 1.
        let lists = ListAssignment::uniform(g.num_edges(), 800);
        let mut ledger = RoundLedger::new();
        let splitting =
            split_colors_independent(&g, &lists, 0.8, 500, 1, 300, &mut rng, &mut ledger).unwrap();
        let (k0, k1) = splitting.sizes(&g, &lists);
        assert!(k0 >= 500);
        assert!(k1 >= 1);
    }

    #[test]
    fn independent_split_fails_for_impossible_targets() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::path(10);
        let lists = ListAssignment::uniform(g.num_edges(), 4);
        let mut ledger = RoundLedger::new();
        let result = split_colors_independent(&g, &lists, 0.5, 4, 4, 20, &mut rng, &mut ledger);
        assert!(matches!(result, Err(FdError::NotConverged { .. })));
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::path(5);
        let lists = ListAssignment::uniform(g.num_edges(), 3);
        let mut ledger = RoundLedger::new();
        assert!(split_colors_clustered(&g, &lists, 0.0, &mut rng, &mut ledger).is_err());
        assert!(
            split_colors_independent(&g, &lists, 1.5, 1, 1, 10, &mut rng, &mut ledger).is_err()
        );
    }

    #[test]
    fn merged_side_decompositions_stay_forests() {
        // Proposition 4.8 in action: color side-0 and side-1 edges separately
        // by augmentation, then merge and validate.
        use forest_graph::decomposition::{
            merge_disjoint_colorings, validate_partial_forest_decomposition, PartialEdgeColoring,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::planted_forest_union(24, 2, &mut rng);
        let alpha = forest_graph::matroid::arboricity(&g);
        let total_colors = 2 * (alpha + 2);
        let lists = ListAssignment::uniform(g.num_edges(), total_colors);
        // A deterministic vertex-color splitting: the upper half of the color
        // space goes to side 1 at every vertex (a legal splitting by
        // Definition 4.7).
        let upper: HashSet<Color> = (alpha + 2..total_colors).map(Color::new).collect();
        let splitting = VertexColorSplitting {
            side1: vec![upper; g.num_vertices()],
        };
        let q0 = splitting.induced_lists(&g, &lists, 0);
        let q1 = splitting.induced_lists(&g, &lists, 1);
        assert!(q0.min_palette_size() > alpha);
        assert!(q1.min_palette_size() > alpha);
        let half = g.num_edges() / 2;
        let mut c0 = PartialEdgeColoring::new_uncolored(g.num_edges());
        let mut c1 = PartialEdgeColoring::new_uncolored(g.num_edges());
        // Color first half on side 0.
        let ctx0 = crate::augmenting::AugmentationContext::new(&g, &q0);
        for (i, e) in g.edge_ids().enumerate() {
            if i < half {
                ctx0.augment_edge(&mut c0, e, 200).unwrap();
            }
        }
        // Color second half on side 1.
        let ctx1 = crate::augmenting::AugmentationContext::new(&g, &q1);
        for (i, e) in g.edge_ids().enumerate() {
            if i >= half {
                ctx1.augment_edge(&mut c1, e, 200).unwrap();
            }
        }
        let merged = merge_disjoint_colorings(&c0, &c1, 0);
        assert!(merged.is_complete());
        validate_partial_forest_decomposition(&g, &merged)
            .expect("Proposition 4.8: merged coloring is a forest per color");
    }
}
