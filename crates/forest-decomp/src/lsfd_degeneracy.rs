//! List star-forest decomposition from low-degeneracy orientations
//! (Theorem 2.2 and Theorem 2.3).
//!
//! Theorem 2.2: if a multigraph has an acyclic `d`-orientation, then any
//! palette assignment with `2d` colors per edge admits a list-star-forest
//! decomposition — color the edges in reverse topological order of their
//! tails, always avoiding the colors already used by the out-edges of both
//! endpoints. Combined with degeneracy `≤ 2α − 1` this gives
//! `α_liststar ≤ 4α − 2` (Corollary 1.2).
//!
//! Theorem 2.3 turns this into an algorithm: the acyclic orientation comes
//! from the H-partition (out-degree `t = ⌊(2+ε)α*⌋`), so palettes of size
//! `2t ≈ (4+ε)α*` suffice. The LOCAL implementation processes the H-partition
//! classes from last to first and colors each class with a network
//! decomposition (the paper's "third algorithm", `O(log³ n / ε)` rounds); the
//! simulation here performs the same reverse order sequentially and charges
//! those rounds.

use crate::error::{check_epsilon, FdError};
use crate::hpartition::{acyclic_orientation, h_partition};
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::{Color, EdgeId, GraphView, ListAssignment, Orientation};
use local_model::rounds::costs;
use local_model::RoundLedger;
use std::collections::HashSet;

/// Theorem 2.2 (constructive form): greedily list-colors the edges against an
/// acyclic orientation so that every color class is a star forest.
///
/// Processing order: tails in reverse topological order, so that when an edge
/// `u → v` is colored, every out-edge of `v` already has its color.
/// The choice for `u → v` avoids all colors already used by out-edges of `u`
/// or `v`, which needs palettes of size at least
/// `outdeg(u) + outdeg(v) - 1 ≤ 2d`.
///
/// # Errors
///
/// Returns [`FdError::PaletteTooSmall`] if some palette runs out of colors.
pub fn greedy_lsfd_from_orientation<G: GraphView>(
    g: &G,
    orientation: &Orientation,
    lists: &ListAssignment,
) -> Result<PartialEdgeColoring, FdError> {
    let order = orientation
        .topological_order(g)
        .expect("the orientation must be acyclic");
    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
    // Colors currently used by the out-edges of each vertex.
    let mut out_colors: Vec<HashSet<Color>> = vec![HashSet::new(); g.num_vertices()];
    for &u in order.iter().rev() {
        for e in orientation.out_edges(g, u) {
            let v = orientation.head(g, e);
            let choice =
                lists.palette(e).iter().copied().find(|c| {
                    !out_colors[u.index()].contains(c) && !out_colors[v.index()].contains(c)
                });
            match choice {
                Some(c) => {
                    coloring.set(e, c);
                    out_colors[u.index()].insert(c);
                }
                None => {
                    return Err(FdError::PaletteTooSmall {
                        edge: e,
                        needed: out_colors[u.index()].len() + out_colors[v.index()].len() + 1,
                        available: lists.palette(e).len(),
                    })
                }
            }
        }
    }
    Ok(coloring)
}

/// Outcome of the Theorem 2.3 list-star-forest decomposition.
#[derive(Clone, Debug)]
pub struct LsfdOutcome {
    /// The complete list-star-forest coloring.
    pub coloring: PartialEdgeColoring,
    /// The H-partition out-degree bound `t` that was used.
    pub degree_threshold: usize,
    /// Minimum palette size the algorithm needed (`2t`).
    pub required_palette: usize,
    /// Round accounting for this call.
    pub rounds: usize,
}

/// Theorem 2.3: computes a list-star-forest decomposition of a multigraph
/// whose palettes have at least `2⌊(2+ε)α*⌋` colors.
///
/// # Errors
///
/// Returns an error for invalid `ε` or palettes below the required size.
pub fn list_star_forest_decomposition_degeneracy<G: GraphView>(
    g: &G,
    lists: &ListAssignment,
    epsilon: f64,
    pseudoarboricity_bound: usize,
    ledger: &mut RoundLedger,
) -> Result<LsfdOutcome, FdError> {
    check_epsilon(epsilon)?;
    let before = ledger.total_rounds();
    if g.num_edges() == 0 {
        return Ok(LsfdOutcome {
            coloring: PartialEdgeColoring::new_uncolored(0),
            degree_threshold: 0,
            required_palette: 0,
            rounds: 0,
        });
    }
    let hp = h_partition(g, epsilon, pseudoarboricity_bound.max(1), ledger)?;
    let orientation = acyclic_orientation(g, &hp);
    let required_palette = 2 * hp.degree_threshold;
    if lists.min_palette_size() < required_palette {
        // Identify one offending edge for the error message.
        let edge = g
            .edge_ids()
            .find(|&e| lists.palette(e).len() < required_palette)
            .unwrap_or(EdgeId::new(0));
        return Err(FdError::PaletteTooSmall {
            edge,
            needed: required_palette,
            available: lists.palette(edge).len(),
        });
    }
    let coloring = greedy_lsfd_from_orientation(g, &orientation, lists)?;
    // The LOCAL implementation colors the k = O(log n / eps) H-partition
    // classes in reverse order, each with a network-decomposition-driven
    // proper list edge coloring: O(log^2 n) rounds per class.
    let n = g.num_vertices();
    let per_class = costs::network_decomposition(n, 1);
    ledger.charge(
        "Theorem 2.3 class-by-class list edge coloring",
        hp.num_classes * per_class,
    );
    let rounds = ledger.total_rounds() - before;
    Ok(LsfdOutcome {
        coloring,
        degree_threshold: hp.degree_threshold,
        required_palette,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{validate_list_coloring, validate_star_forest_decomposition};
    use forest_graph::orientation::pseudoarboricity;
    use forest_graph::MultiGraph;
    use forest_graph::{generators, matroid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn validate_lsfd(g: &MultiGraph, coloring: &PartialEdgeColoring, lists: &ListAssignment) {
        assert!(coloring.is_complete());
        validate_list_coloring(g, coloring, lists).expect("palettes respected");
        let fd = coloring.clone().into_complete().expect("complete");
        validate_star_forest_decomposition(g, &fd, None).expect("star forests");
    }

    #[test]
    fn theorem_2_2_on_planted_multigraph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(40, 3, &mut rng);
        // Exact minimum orientation: out-degree d = alpha* <= 2 alpha - 1.
        let (orientation, d) = forest_graph::orientation::min_max_outdegree_orientation(&g);
        // Acyclic orientations are required; the flow orientation may contain
        // cycles, so fall back to the H-partition orientation when it does.
        let orientation = if orientation.is_acyclic(&g) {
            orientation
        } else {
            let mut ledger = RoundLedger::new();
            let hp = h_partition(&g, 0.5, d, &mut ledger).unwrap();
            acyclic_orientation(&g, &hp)
        };
        let d = orientation.max_out_degree(&g);
        let lists = ListAssignment::uniform(g.num_edges(), 2 * d);
        let coloring = greedy_lsfd_from_orientation(&g, &orientation, &lists).unwrap();
        validate_lsfd(&g, &coloring, &lists);
    }

    #[test]
    fn theorem_2_2_with_random_palettes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::planted_forest_union(30, 2, &mut rng);
        let mut ledger = RoundLedger::new();
        let ps = pseudoarboricity(&g);
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        let d = orientation.max_out_degree(&g);
        let lists = ListAssignment::random(g.num_edges(), 4 * d, 2 * d, &mut rng);
        let coloring = greedy_lsfd_from_orientation(&g, &orientation, &lists).unwrap();
        validate_lsfd(&g, &coloring, &lists);
    }

    #[test]
    fn theorem_2_3_end_to_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_forest_union(50, 3, &mut rng);
        let ps = pseudoarboricity(&g);
        // Palettes of size 2 * floor(2.5 * alpha*).
        let t = (2.5 * ps as f64).floor() as usize;
        let lists = ListAssignment::uniform(g.num_edges(), 2 * t);
        let mut ledger = RoundLedger::new();
        let out =
            list_star_forest_decomposition_degeneracy(&g, &lists, 0.5, ps, &mut ledger).unwrap();
        validate_lsfd(&g, &out.coloring, &lists);
        assert_eq!(out.required_palette, 2 * out.degree_threshold);
        assert!(out.rounds > 0);
        // Corollary 1.2 flavor: the number of colors used is at most 4*alpha-2
        // ... with our (2+eps) slack, at most 2t.
        assert!(out.coloring.num_colors_used() <= 2 * t);
    }

    #[test]
    fn theorem_2_3_rejects_small_palettes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::planted_forest_union(20, 2, &mut rng);
        let ps = pseudoarboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), 2);
        let mut ledger = RoundLedger::new();
        assert!(matches!(
            list_star_forest_decomposition_degeneracy(&g, &lists, 0.5, ps, &mut ledger),
            Err(FdError::PaletteTooSmall { .. })
        ));
    }

    #[test]
    fn corollary_1_2_liststar_bound_on_multigraphs() {
        // alpha_liststar <= 4 alpha - 2: check on a fat path (alpha = 3) with
        // palettes of size 4*3 - 2 = 10 drawn from a larger color space.
        let g = generators::fat_path(20, 3);
        let alpha = matroid::arboricity(&g);
        assert_eq!(alpha, 3);
        let mut rng = StdRng::seed_from_u64(5);
        // Degeneracy-style orientation: use the exact minimum out-degree
        // orientation if acyclic, else the H-partition one with small eps.
        let mut ledger = RoundLedger::new();
        let ps = pseudoarboricity(&g);
        let hp = h_partition(&g, 0.01, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        let d = orientation.max_out_degree(&g);
        // The classical bound needs 2d colors; d <= 2 alpha - 1 would give
        // 4 alpha - 2, our H-partition d may be slightly larger.
        let lists = ListAssignment::random(g.num_edges(), 4 * d, 2 * d, &mut rng);
        let coloring = greedy_lsfd_from_orientation(&g, &orientation, &lists).unwrap();
        validate_lsfd(&g, &coloring, &lists);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = MultiGraph::new(3);
        let lists = ListAssignment::uniform(0, 1);
        let mut ledger = RoundLedger::new();
        let out =
            list_star_forest_decomposition_degeneracy(&g, &lists, 0.5, 1, &mut ledger).unwrap();
        assert_eq!(out.coloring.len(), 0);
    }
}
