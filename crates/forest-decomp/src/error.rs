//! Error type for the decomposition algorithms.

use crate::api::{Engine, ProblemKind};
use forest_graph::{EdgeId, GraphError, ValidationError};
use std::error::Error;
use std::fmt;

/// Errors returned by the forest-decomposition algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum FdError {
    /// An edge's palette is too small for the requested decomposition.
    PaletteTooSmall {
        /// The offending edge.
        edge: EdgeId,
        /// Number of colors the algorithm needs on this edge.
        needed: usize,
        /// Number of colors actually available.
        available: usize,
    },
    /// No augmenting sequence was found for an uncolored edge within the
    /// allotted locality radius (indicates the palette/arboricity
    /// preconditions are violated).
    AugmentationFailed {
        /// The edge that could not be colored.
        edge: EdgeId,
    },
    /// The provided arboricity bound is smaller than what the graph requires.
    ArboricityBoundTooSmall {
        /// The bound that was supplied.
        bound: usize,
        /// A lower bound on the true arboricity.
        required: usize,
    },
    /// A randomized phase failed to converge within its round budget.
    NotConverged {
        /// Description of the phase.
        phase: String,
    },
    /// The algorithm requires a simple graph but was given parallel edges.
    NotSimple,
    /// An epsilon outside the supported range `(0, 1)` was supplied.
    InvalidEpsilon {
        /// The supplied value.
        epsilon: f64,
    },
    /// A produced decomposition failed validation (internal invariant
    /// violation; should not happen).
    InvalidDecomposition(ValidationError),
    /// The requested engine cannot solve the requested problem kind (the
    /// `Decomposer` facade returns this instead of panicking on any
    /// `(problem, engine)` pair).
    UnsupportedCombination {
        /// The requested problem.
        problem: ProblemKind,
        /// The engine that does not support it.
        engine: Engine,
    },
    /// A request artifact (explicit palettes, a report being re-validated)
    /// does not match the graph it was paired with.
    GraphMismatch {
        /// Edge count the artifact was built for.
        expected_edges: usize,
        /// Edge count of the graph actually supplied.
        actual_edges: usize,
    },
    /// An orientation artifact assigns an edge a tail that is not one of its
    /// endpoints in the graph it is validated against.
    InvalidOrientation {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A list problem reached an engine without resolved palettes (engines
    /// driven directly must supply them; the `Decomposer` always does).
    MissingPalettes {
        /// The list problem that was requested.
        problem: ProblemKind,
    },
    /// An I/O failure while loading or saving a graph (mmap inputs).
    Io {
        /// What was being done, including the underlying error text.
        context: String,
    },
    /// `run_sharded` only composes problems whose per-shard artifacts merge
    /// safely across vertex-disjoint shards (currently: `Forest`).
    ShardingUnsupported {
        /// The problem that was requested.
        problem: ProblemKind,
    },
    /// `run_sharded` was asked for zero shards. (The low-level
    /// `CsrPartition::split` clamps instead, documented; the facade rejects
    /// so a misconfigured caller hears about it.)
    InvalidShardCount {
        /// The shard count that was requested.
        requested: usize,
    },
    /// A shard index beyond the partition's shard count.
    ShardOutOfRange {
        /// The requested shard.
        shard: usize,
        /// How many shards the partition has.
        num_shards: usize,
    },
    /// The `DynamicDecomposer` only maintains problems whose coloring stays
    /// valid under edge-local recoloring (currently: `Forest`).
    DynamicUnsupported {
        /// The problem that was requested.
        problem: ProblemKind,
    },
    /// An update named an edge id that is not live (never inserted, or
    /// already deleted — dynamic edge ids are retired, not reused).
    UnknownEdge {
        /// The offending edge id.
        edge: EdgeId,
    },
    /// An update was structurally invalid at the graph layer (endpoint out
    /// of range, self-loop).
    Graph(GraphError),
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdError::PaletteTooSmall {
                edge,
                needed,
                available,
            } => write!(
                f,
                "palette of edge {edge} has {available} colors but {needed} are needed"
            ),
            FdError::AugmentationFailed { edge } => {
                write!(f, "no augmenting sequence found for edge {edge}")
            }
            FdError::ArboricityBoundTooSmall { bound, required } => write!(
                f,
                "arboricity bound {bound} is below the required value {required}"
            ),
            FdError::NotConverged { phase } => {
                write!(f, "randomized phase did not converge: {phase}")
            }
            FdError::NotSimple => write!(f, "algorithm requires a simple graph"),
            FdError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon {epsilon} outside the supported range (0, 1)")
            }
            FdError::InvalidDecomposition(err) => {
                write!(f, "produced decomposition failed validation: {err}")
            }
            FdError::UnsupportedCombination { problem, engine } => {
                write!(f, "engine {engine} does not support the {problem} problem")
            }
            FdError::GraphMismatch {
                expected_edges,
                actual_edges,
            } => write!(
                f,
                "artifact was built for {expected_edges} edges but the graph has {actual_edges}"
            ),
            FdError::InvalidOrientation { edge } => write!(
                f,
                "orientation tail of edge {edge} is not one of its endpoints"
            ),
            FdError::MissingPalettes { problem } => write!(
                f,
                "the {problem} problem requires palettes; run it through the Decomposer \
                 or pass lists to the engine"
            ),
            FdError::Io { context } => write!(f, "graph I/O failed: {context}"),
            FdError::ShardingUnsupported { problem } => write!(
                f,
                "run_sharded does not support the {problem} problem (per-shard artifacts \
                 only merge safely for forest decomposition)"
            ),
            FdError::InvalidShardCount { requested } => write!(
                f,
                "run_sharded requires at least one shard (got {requested})"
            ),
            FdError::ShardOutOfRange { shard, num_shards } => write!(
                f,
                "shard {shard} out of range: the partition has {num_shards} shards"
            ),
            FdError::DynamicUnsupported { problem } => write!(
                f,
                "the DynamicDecomposer does not maintain the {problem} problem (recoloring \
                 an update's neighborhood only preserves plain forest colorings)"
            ),
            FdError::UnknownEdge { edge } => {
                write!(
                    f,
                    "edge {edge} is not live (never inserted or already deleted)"
                )
            }
            FdError::Graph(err) => write!(f, "invalid update: {err}"),
        }
    }
}

impl Error for FdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FdError::InvalidDecomposition(err) => Some(err),
            FdError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for FdError {
    fn from(err: GraphError) -> Self {
        FdError::Graph(err)
    }
}

impl From<ValidationError> for FdError {
    fn from(err: ValidationError) -> Self {
        FdError::InvalidDecomposition(err)
    }
}

/// Validates that epsilon lies in the supported range `(0, 1)`.
pub fn check_epsilon(epsilon: f64) -> Result<(), FdError> {
    if epsilon > 0.0 && epsilon < 1.0 && epsilon.is_finite() {
        Ok(())
    } else {
        Err(FdError::InvalidEpsilon { epsilon })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = FdError::PaletteTooSmall {
            edge: EdgeId::new(3),
            needed: 5,
            available: 2,
        };
        let text = err.to_string();
        assert!(text.contains("e3"));
        assert!(text.contains('5'));
        assert!(text.contains('2'));
    }

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.25).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(1.0).is_err());
        assert!(check_epsilon(-0.5).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
    }

    #[test]
    fn validation_error_converts() {
        let inner = ValidationError::UncoloredEdge {
            edge: EdgeId::new(1),
        };
        let err: FdError = inner.clone().into();
        assert_eq!(err, FdError::InvalidDecomposition(inner));
        assert!(std::error::Error::source(&err).is_some());
    }
}
