//! Baseline algorithms the paper compares against.
//!
//! * [`barenboim_elkin_forest_decomposition`]: the classical
//!   `(2+ε)α`-forest decomposition from the H-partition [BE10] — the starting
//!   point of Open Problem 11.10 that the paper improves on.
//! * [`two_color_star_forests`]: the folklore `α_star ≤ 2α` bound obtained by
//!   two-coloring the vertices of each tree by depth parity.
//! * [`exact_centralized_decomposition`]: the Gabow–Westermann-style exact
//!   `α`-forest decomposition (matroid partition), the centralized ground
//!   truth.

use crate::error::FdError;
use crate::hpartition::{acyclic_orientation, h_partition, out_edge_labels};
use forest_graph::traversal::root_forest;
use forest_graph::{Color, ForestDecomposition, GraphView};
use local_model::RoundLedger;

/// Result of the Barenboim–Elkin baseline.
#[derive(Clone, Debug)]
pub struct BaselineFd {
    /// The forest decomposition.
    pub decomposition: ForestDecomposition,
    /// The color budget `t = ⌊(2+ε)α*⌋` (the decomposition uses at most this
    /// many colors).
    pub color_budget: usize,
    /// LOCAL rounds used.
    pub rounds: usize,
}

/// The `(2+ε)α*`-forest decomposition of Barenboim–Elkin: H-partition,
/// acyclic orientation, and one forest per out-edge label.
///
/// # Errors
///
/// Propagates the H-partition parameter errors.
pub fn barenboim_elkin_forest_decomposition<G: GraphView>(
    g: &G,
    epsilon: f64,
    pseudoarboricity_bound: usize,
    ledger: &mut RoundLedger,
) -> Result<BaselineFd, FdError> {
    let before = ledger.total_rounds();
    let hp = h_partition(g, epsilon, pseudoarboricity_bound, ledger)?;
    let orientation = acyclic_orientation(g, &hp);
    let labels = out_edge_labels(g, &orientation);
    let decomposition =
        ForestDecomposition::from_colors(labels.iter().map(|&l| Color::new(l)).collect());
    Ok(BaselineFd {
        decomposition,
        color_budget: hp.degree_threshold,
        rounds: ledger.total_rounds() - before,
    })
}

/// The folklore `2α`-star-forest decomposition: root every tree of every
/// color class and split its edges by the depth parity of the parent
/// endpoint. Color `2c + p` holds the class-`c` edges whose parent sits at
/// even (`p = 0`) or odd (`p = 1`) depth.
pub fn two_color_star_forests<G: GraphView>(
    g: &G,
    decomposition: &ForestDecomposition,
) -> ForestDecomposition {
    let mut colors = vec![Color::new(0); g.num_edges()];
    let mut in_class = vec![false; g.num_edges()];
    for c in decomposition.colors_used() {
        let class = decomposition.edges_with_color(c);
        for &e in &class {
            in_class[e.index()] = true;
        }
        let rooted = root_forest(g, |e| in_class[e.index()], |_| 0);
        for v in g.vertices() {
            if let Some(pe) = rooted.parent_edge[v.index()] {
                if in_class[pe.index()] {
                    let parent_depth = rooted.depth[v.index()] - 1;
                    colors[pe.index()] = Color::new(2 * c.index() + parent_depth % 2);
                }
            }
        }
        for &e in &class {
            in_class[e.index()] = false;
        }
    }
    ForestDecomposition::from_colors(colors)
}

/// The exact centralized `α`-forest decomposition (matroid partition); a thin
/// convenience re-export so benchmark code only needs this crate. Generic
/// over [`GraphView`], so it runs directly on CSR and zero-copy shard views.
pub fn exact_centralized_decomposition<G: GraphView>(g: &G) -> (ForestDecomposition, usize) {
    let exact = forest_graph::matroid::exact_forest_decomposition(g);
    (exact.decomposition, exact.arboricity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{
        validate_forest_decomposition, validate_star_forest_decomposition,
    };
    use forest_graph::orientation::pseudoarboricity;
    use forest_graph::{generators, matroid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barenboim_elkin_uses_at_most_2_plus_eps_alpha_star_colors() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(60, 3, &mut rng);
        let ps = pseudoarboricity(&g);
        let mut ledger = RoundLedger::new();
        let baseline = barenboim_elkin_forest_decomposition(&g, 0.5, ps, &mut ledger).unwrap();
        assert_eq!(baseline.color_budget, (2.5 * ps as f64).floor() as usize);
        validate_forest_decomposition(&g, &baseline.decomposition, Some(baseline.color_budget))
            .expect("valid (2+eps)-FD");
        assert!(baseline.rounds > 0);
    }

    #[test]
    fn barenboim_elkin_vs_exact_color_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::planted_forest_union(60, 4, &mut rng);
        let alpha = matroid::arboricity(&g);
        let ps = pseudoarboricity(&g);
        let mut ledger = RoundLedger::new();
        let baseline = barenboim_elkin_forest_decomposition(&g, 0.25, ps, &mut ledger).unwrap();
        let used = baseline.decomposition.num_colors_used();
        // The baseline uses more colors than the optimum but at most
        // (2+eps) alpha*.
        assert!(used >= alpha, "cannot beat the arboricity");
        assert!(used <= (2.25 * ps as f64).floor() as usize);
    }

    #[test]
    fn two_coloring_turns_forests_into_star_forests() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_forest_union(50, 3, &mut rng);
        let exact = matroid::exact_forest_decomposition(&g);
        let stars = two_color_star_forests(&g, &exact.decomposition);
        validate_star_forest_decomposition(&g, &stars, Some(2 * exact.arboricity))
            .expect("alpha_star <= 2 alpha");
    }

    #[test]
    fn two_coloring_on_a_deep_path() {
        let g = generators::path(100);
        let (fd, alpha) = exact_centralized_decomposition(&g);
        assert_eq!(alpha, 1);
        let stars = two_color_star_forests(&g, &fd);
        validate_star_forest_decomposition(&g, &stars, Some(2)).expect("2-SFD of a path");
    }

    #[test]
    fn exact_baseline_roundtrip() {
        let g = generators::complete_graph(7);
        let (fd, alpha) = exact_centralized_decomposition(&g);
        assert_eq!(alpha, 4);
        validate_forest_decomposition(&g, &fd, Some(4)).expect("exact decomposition");
    }
}
