//! Hopcroft–Karp maximum bipartite matching.
//!
//! The star-forest construction of Section 5 matches, for every vertex `v`,
//! its outgoing edges against the colors of `C(v)` in the bipartite graph
//! `H_v` (Proposition 5.1). This module provides the matching substrate.

use std::collections::VecDeque;

/// A maximum matching in a bipartite graph with `num_left` left nodes and
/// `num_right` right nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// For each left node, the matched right node (if any).
    pub pair_left: Vec<Option<usize>>,
    /// For each right node, the matched left node (if any).
    pub pair_right: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: usize = usize::MAX;

/// Computes a maximum matching with the Hopcroft–Karp algorithm.
///
/// `adj[l]` lists the right nodes adjacent to left node `l`.
///
/// # Panics
///
/// Panics if an adjacency entry is out of range.
pub fn maximum_bipartite_matching(
    num_left: usize,
    num_right: usize,
    adj: &[Vec<usize>],
) -> BipartiteMatching {
    assert_eq!(adj.len(), num_left, "adjacency must cover every left node");
    for nbrs in adj {
        for &r in nbrs {
            assert!(r < num_right, "right node {r} out of range");
        }
    }
    let mut pair_left: Vec<Option<usize>> = vec![None; num_left];
    let mut pair_right: Vec<Option<usize>> = vec![None; num_right];
    let mut dist = vec![INF; num_left];

    fn bfs(
        adj: &[Vec<usize>],
        pair_left: &[Option<usize>],
        pair_right: &[Option<usize>],
        dist: &mut [usize],
    ) -> bool {
        let mut queue = VecDeque::new();
        for (l, d) in dist.iter_mut().enumerate() {
            if pair_left[l].is_none() {
                *d = 0;
                queue.push_back(l);
            } else {
                *d = INF;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                match pair_right[r] {
                    None => found = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        found
    }

    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        pair_left: &mut [Option<usize>],
        pair_right: &mut [Option<usize>],
        dist: &mut [usize],
    ) -> bool {
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let ok = match pair_right[r] {
                None => true,
                Some(l2) => dist[l2] == dist[l] + 1 && dfs(l2, adj, pair_left, pair_right, dist),
            };
            if ok {
                pair_left[l] = Some(r);
                pair_right[r] = Some(l);
                return true;
            }
        }
        dist[l] = INF;
        false
    }

    let mut size = 0;
    while bfs(adj, &pair_left, &pair_right, &mut dist) {
        for l in 0..num_left {
            if pair_left[l].is_none() && dfs(l, adj, &mut pair_left, &mut pair_right, &mut dist) {
                size += 1;
            }
        }
    }
    BipartiteMatching {
        pair_left,
        pair_right,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let adj: Vec<Vec<usize>> = (0..5).map(|i| vec![i]).collect();
        let m = maximum_bipartite_matching(5, 5, &adj);
        assert_eq!(m.size, 5);
        for i in 0..5 {
            assert_eq!(m.pair_left[i], Some(i));
            assert_eq!(m.pair_right[i], Some(i));
        }
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let m = maximum_bipartite_matching(3, 3, &[vec![], vec![], vec![]]);
        assert_eq!(m.size, 0);
        assert!(m.pair_left.iter().all(Option::is_none));
    }

    #[test]
    fn augmenting_path_is_found() {
        // Left 0 -> {0}, Left 1 -> {0, 1}: maximum matching has size 2 and
        // requires an augmenting path through left 1.
        let adj = vec![vec![0], vec![0, 1]];
        let m = maximum_bipartite_matching(2, 2, &adj);
        assert_eq!(m.size, 2);
        assert_eq!(m.pair_left[0], Some(0));
        assert_eq!(m.pair_left[1], Some(1));
    }

    #[test]
    fn hall_violator_limits_matching() {
        // Three left nodes all adjacent only to right node 0.
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = maximum_bipartite_matching(3, 2, &adj);
        assert_eq!(m.size, 1);
    }

    #[test]
    fn larger_random_like_instance() {
        // A 6x6 instance with a known perfect matching along the diagonal,
        // plus extra noise edges.
        let adj = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![5, 0],
        ];
        let m = maximum_bipartite_matching(6, 6, &adj);
        assert_eq!(m.size, 6);
        // Matching is consistent.
        for (l, adj_l) in adj.iter().enumerate() {
            let r = m.pair_left[l].unwrap();
            assert_eq!(m.pair_right[r], Some(l));
            assert!(adj_l.contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_right_node() {
        maximum_bipartite_matching(1, 1, &[vec![5]]);
    }
}
