//! Diameter reduction for forest decompositions
//! (Proposition 2.4 and Corollary 2.5).
//!
//! Given any (list-)forest decomposition, the trees may be arbitrarily deep.
//! The reduction roots every tree of every color class, deletes one random
//! depth layer out of every `z` consecutive layers, and recolors the deleted
//! edges with `O(εα)` fresh colors (as star forests via Theorem 2.1(3)). The
//! surviving trees have diameter `O(z)`:
//!
//! * `z = Θ(log n / ε)` works for every `α` (Proposition 2.4, first case);
//! * `z = Θ(1/ε)` needs `α ≥ Ω(min(log n / ε, log Δ / ε²))` for the new-color
//!   budget to hold w.h.p. (second case) — with smaller `α` the reduction
//!   still produces a valid decomposition, just with more extra colors, which
//!   the benchmarks report.
//!
//! Proposition C.1 shows the `Ω(1/ε)` diameter is optimal for multigraphs.

use crate::error::{check_epsilon, FdError};
use crate::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use forest_graph::decomposition::{max_forest_diameter, PartialEdgeColoring};
use forest_graph::traversal::root_forest;
use forest_graph::{Color, EdgeId, GraphView};
use local_model::rounds::costs;
use local_model::RoundLedger;
use rand::Rng;
use std::collections::HashSet;

/// Target diameter regime of the reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiameterTarget {
    /// Diameter `O(log n / ε)` — always applicable (Proposition 2.4 case 1).
    LogOverEpsilon,
    /// Diameter `O(1/ε)` — the paper needs `α ≥ Ω(min(log n/ε, log Δ/ε²))`
    /// for the color budget (Proposition 2.4 case 2, Corollary 2.5).
    OneOverEpsilon,
}

/// Outcome of a diameter reduction.
#[derive(Clone, Debug)]
pub struct DiameterReductionOutcome {
    /// The new coloring: kept edges keep their colors, deleted edges receive
    /// fresh colors at or above [`Self::new_color_offset`]. Edges that were
    /// uncolored on input stay uncolored.
    pub coloring: PartialEdgeColoring,
    /// Colors `>= new_color_offset` were introduced by the reduction.
    pub new_color_offset: usize,
    /// Number of fresh colors used for the recolored (deleted) edges.
    pub num_new_colors: usize,
    /// Number of edges that were deleted from their original class.
    pub removed_edges: usize,
    /// Maximum tree diameter of the resulting decomposition.
    pub max_diameter: usize,
    /// The layer spacing `z` that was used.
    pub layer_spacing: usize,
}

/// Reduces the diameter of every color class of `coloring` to `O(z)` where
/// `z` depends on `target`, recoloring the deleted layers with fresh colors
/// (starting right above the largest color currently in use).
///
/// # Errors
///
/// Returns an error for invalid `ε` or if the internal recoloring of the
/// deleted edges fails.
pub fn reduce_diameter<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    coloring: &PartialEdgeColoring,
    epsilon: f64,
    target: DiameterTarget,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> Result<DiameterReductionOutcome, FdError> {
    check_epsilon(epsilon)?;
    let n = g.num_vertices();
    let layer_spacing = match target {
        DiameterTarget::LogOverEpsilon => {
            (((costs::ln_ceil(n).max(1) as f64) / epsilon).ceil() as usize).max(2)
        }
        DiameterTarget::OneOverEpsilon => ((2.0 / epsilon).ceil() as usize).max(2),
    };
    // The whole procedure (rooting, one layer-deletion round, recoloring the
    // deleted edges) is local to each tree; charge O(z) rounds for the tree
    // operations.
    ledger.charge(
        format!("diameter reduction (layer spacing {layer_spacing})"),
        layer_spacing,
    );

    let mut result = coloring.clone();
    let mut removed: Vec<EdgeId> = Vec::new();
    let colors: Vec<Color> = coloring.colors_used().into_iter().collect();
    for &c in &colors {
        let class: HashSet<EdgeId> = coloring.edges_with_color(c).into_iter().collect();
        if class.is_empty() {
            continue;
        }
        let rooted = root_forest(g, |e| class.contains(&e), |_| 0);
        let offset = rng.gen_range(0..layer_spacing);
        for v in g.vertices() {
            if let Some(pe) = rooted.parent_edge[v.index()] {
                if class.contains(&pe) && rooted.depth[v.index()] % layer_spacing == offset {
                    result.clear(pe);
                    removed.push(pe);
                }
            }
        }
    }

    // Recolor the deleted edges as star forests with fresh colors
    // (Theorem 2.1(3) applied to the deleted subgraph).
    let new_color_offset = coloring
        .colors_used()
        .into_iter()
        .map(|c| c.index() + 1)
        .max()
        .unwrap_or(0);
    let removed_set: HashSet<EdgeId> = removed.iter().copied().collect();
    let mut num_new_colors = 0usize;
    if !removed.is_empty() {
        let (sub, back) = forest_graph::edge_subgraph(g, |e| removed_set.contains(&e));
        let pseudo = forest_graph::orientation::pseudoarboricity(&sub).max(1);
        let hp = h_partition(&sub, 0.5, pseudo, ledger)?;
        let orientation = acyclic_orientation(&sub, &hp);
        let sfd = star_forest_decomposition(&sub, &orientation, ledger);
        let mut used = HashSet::new();
        for (i, &orig) in back.iter().enumerate() {
            let c = sfd.color(EdgeId::new(i));
            used.insert(c);
            result.set(orig, Color::new(new_color_offset + c.index()));
        }
        num_new_colors = used.len();
    }

    let max_diameter = max_forest_diameter(g, &result);
    Ok(DiameterReductionOutcome {
        coloring: result,
        new_color_offset,
        num_new_colors,
        removed_edges: removed.len(),
        max_diameter,
        layer_spacing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{validate_partial_forest_decomposition, ForestDecomposition};
    use forest_graph::generators;
    use forest_graph::MultiGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A single very deep tree (a path) in one color.
    fn deep_path_coloring(n: usize) -> (MultiGraph, PartialEdgeColoring) {
        let g = generators::path(n);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(0));
        }
        (g, coloring)
    }

    #[test]
    fn reduces_path_diameter_to_one_over_eps() {
        let (g, coloring) = deep_path_coloring(300);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ledger = RoundLedger::new();
        let out = reduce_diameter(
            &g,
            &coloring,
            0.25,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        validate_partial_forest_decomposition(&g, &out.coloring).expect("still a forest per color");
        assert!(out.coloring.is_complete());
        // z = ceil(2/0.25) = 8; surviving runs have at most z-1 edges, and the
        // recolored edges form stars (diameter <= 2).
        assert!(
            out.max_diameter <= 2 * out.layer_spacing,
            "diameter {}",
            out.max_diameter
        );
        assert!(out.max_diameter < 299, "diameter did not shrink");
        assert!(out.removed_edges > 0);
        assert!(out.num_new_colors >= 1);
    }

    #[test]
    fn reduces_diameter_in_log_regime() {
        let (g, coloring) = deep_path_coloring(400);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ledger = RoundLedger::new();
        let out = reduce_diameter(
            &g,
            &coloring,
            0.5,
            DiameterTarget::LogOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        assert!(out.max_diameter <= 2 * out.layer_spacing);
        validate_partial_forest_decomposition(&g, &out.coloring).expect("valid");
    }

    #[test]
    fn multi_color_decomposition_is_reduced_per_color() {
        // A fat path with 2 parallel edges, exactly decomposed into 2 deep
        // path-forests by the matroid baseline.
        let g = generators::fat_path(150, 2);
        let exact = forest_graph::matroid::exact_forest_decomposition(&g);
        assert_eq!(exact.arboricity, 2);
        let coloring = exact.decomposition.to_partial();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ledger = RoundLedger::new();
        let out = reduce_diameter(
            &g,
            &coloring,
            0.3,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        validate_partial_forest_decomposition(&g, &out.coloring).expect("valid");
        assert!(out.max_diameter <= 2 * out.layer_spacing);
        // The number of extra colors stays modest on this benign instance.
        assert!(
            out.num_new_colors <= 3 * 2 * 3,
            "too many new colors: {}",
            out.num_new_colors
        );
    }

    #[test]
    fn uncolored_edges_are_left_alone() {
        let (g, mut coloring) = deep_path_coloring(50);
        coloring.clear(EdgeId::new(10));
        let mut rng = StdRng::seed_from_u64(4);
        let mut ledger = RoundLedger::new();
        let out = reduce_diameter(
            &g,
            &coloring,
            0.4,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(out.coloring.color(EdgeId::new(10)), None);
    }

    #[test]
    fn already_shallow_decomposition_needs_no_new_colors_often() {
        // A star-forest decomposition already has diameter <= 2 < z, but the
        // layer deletion may still hit depth-1 vertices when the random
        // offset is small; we only check validity and the diameter bound.
        let g = generators::star(20);
        let fd = ForestDecomposition::from_colors(vec![Color::new(0); 20]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ledger = RoundLedger::new();
        let out = reduce_diameter(
            &g,
            &fd.to_partial(),
            0.5,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        validate_partial_forest_decomposition(&g, &out.coloring).expect("valid");
        assert!(out.max_diameter <= 2);
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let (g, coloring) = deep_path_coloring(10);
        let mut rng = StdRng::seed_from_u64(6);
        let mut ledger = RoundLedger::new();
        assert!(reduce_diameter(
            &g,
            &coloring,
            0.0,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .is_err());
    }

    #[test]
    fn proposition_c1_lower_bound_shape() {
        // Proposition C.1: on the fat path any alpha(1+eps)-FD has diameter
        // Omega(1/eps). Check that our reduced decomposition, which uses
        // roughly (1+eps)-times alpha colors, indeed has diameter on the
        // order of 1/eps rather than O(1).
        let g = generators::fat_path(200, 3);
        let exact = forest_graph::matroid::exact_forest_decomposition(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let mut ledger = RoundLedger::new();
        let epsilon = 0.2;
        let out = reduce_diameter(
            &g,
            &exact.decomposition.to_partial(),
            epsilon,
            DiameterTarget::OneOverEpsilon,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        // Diameter stays Theta(1/eps): at most 2z = O(1/eps)...
        assert!(out.max_diameter <= 2 * out.layer_spacing);
        // ...and the decomposition cannot be much shallower than 1/(2 eps)
        // unless it spent far more than (1+eps) alpha colors (C.1 lower bound).
        let total_colors = out.coloring.num_colors_used();
        if total_colors <= ((1.0 + epsilon) * 3.0).ceil() as usize {
            assert!(out.max_diameter as f64 >= 1.0 / (4.0 * epsilon));
        }
    }
}
