//! The H-partition toolbox (Theorem 2.1).
//!
//! Barenboim–Elkin's H-partition peels the graph into `O(log n / ε)` classes
//! `H_1, .., H_k` such that every vertex of `H_i` has at most
//! `t = ⌊(2+ε)α*⌋` neighbors in `H_i ∪ ... ∪ H_k`. From this single
//! primitive Theorem 2.1 derives:
//!
//! 1. the partition itself,
//! 2. an *acyclic `t`-orientation* (edges point from lower classes to higher
//!    classes, ties broken by vertex id),
//! 3. a `3t`-star-forest decomposition (label the out-edges, 3-color each
//!    rooted tree with Cole–Vishkin, split each forest by the parent color),
//! 4. a `t`-list-forest decomposition (each vertex greedily list-colors its
//!    out-edges with distinct colors).

use crate::error::{check_epsilon, FdError};
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::kernels;
use forest_graph::{
    u32_of, Color, EdgeId, ForestDecomposition, GraphView, ListAssignment, Orientation, VertexId,
};
use forest_obs::{clock::Stopwatch, LazyCounter, Span};
use local_model::cole_vishkin::{cole_vishkin_three_coloring, RootedForestView};
use local_model::RoundLedger;

/// Observability counters for the peeling primitive (cumulative across
/// partitions).
static PEEL_ROUNDS: LazyCounter = LazyCounter::new("hpartition.peel_rounds_total");
static PEELED_VERTICES: LazyCounter = LazyCounter::new("hpartition.peeled_vertices_total");
static PEEL_NANOS: LazyCounter = LazyCounter::new("hpartition.peel_nanos_total");
static FORCED_CLASSES: LazyCounter = LazyCounter::new("hpartition.forced_classes_total");

/// The result of the H-partition peeling process.
#[derive(Clone, Debug)]
pub struct HPartition {
    /// Class index of each vertex (`0`-based: class `i` was peeled in
    /// iteration `i`).
    pub class_of: Vec<usize>,
    /// Number of classes (`k = O(log n / ε)` when the threshold is at least
    /// `(2+ε)α*`).
    pub num_classes: usize,
    /// The peeling degree threshold `t`.
    pub degree_threshold: usize,
    /// Number of peeling iterations that made no progress and had to dump the
    /// remaining vertices into a final class (0 when the threshold satisfies
    /// the theory's precondition).
    pub forced_classes: usize,
}

impl HPartition {
    /// The vertices in a given class.
    pub fn vertices_in_class(&self, class: usize) -> Vec<VertexId> {
        self.class_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(i, _)| VertexId::new(i))
            .collect()
    }

    /// Checks the defining property: every vertex of class `i` has at most
    /// `degree_threshold` neighbors in classes `i, i+1, ..`.
    pub fn satisfies_degree_property<G: GraphView>(&self, g: &G) -> bool {
        for v in g.vertices() {
            let class = self.class_of[v.index()];
            let later_neighbors = g
                .neighbors(v)
                .filter(|u| self.class_of[u.index()] >= class)
                .count();
            if later_neighbors > self.degree_threshold {
                return false;
            }
        }
        true
    }
}

/// Computes the H-partition with peeling threshold
/// `t = ⌊(2+ε) · pseudoarboricity_bound⌋`, charging one LOCAL round per
/// peeling iteration.
///
/// # Errors
///
/// Returns [`FdError::InvalidEpsilon`] for an epsilon outside `(0,1)` and
/// [`FdError::ArboricityBoundTooSmall`] if the bound is zero on a non-empty
/// graph.
pub fn h_partition<G: GraphView>(
    g: &G,
    epsilon: f64,
    pseudoarboricity_bound: usize,
    ledger: &mut RoundLedger,
) -> Result<HPartition, FdError> {
    check_epsilon(epsilon)?;
    if g.num_edges() > 0 && pseudoarboricity_bound == 0 {
        return Err(FdError::ArboricityBoundTooSmall {
            bound: 0,
            required: 1,
        });
    }
    let _peel_span = Span::enter("hpartition.peel");
    let peel_start = Stopwatch::start();
    let threshold = ((2.0 + epsilon) * pseudoarboricity_bound as f64).floor() as usize;
    let n = g.num_vertices();
    let mut class_of = vec![usize::MAX; n];
    let mut active: Vec<u8> = vec![1; n];
    // Degrees fit u32 (edge ids are u32-backed); a threshold beyond u32::MAX
    // accepts every degree either way, so the clamp preserves comparisons.
    let threshold_u32 = u32_of(threshold.min(u32::MAX as usize));
    let mut active_degree: Vec<u32> = g.vertices().map(|v| u32_of(g.degree(v))).collect();
    let mut remaining = n;
    let mut class = 0usize;
    let mut forced_classes = 0usize;
    let mut rounds = 0usize;
    // The round-0 peel set comes from one branchless masked scan; afterwards
    // each round's peel set is maintained as a frontier — a vertex joins it
    // the moment a decrement drops its active degree to the threshold
    // (degrees only decrease, so each vertex crosses exactly once). This
    // replaces the historical O(n)-rescan-per-round loop without changing
    // the peeled sets, the class assignment or the round count.
    let mut frontier: Vec<u32> = Vec::new();
    kernels::select_le_masked(&active_degree, &active, threshold_u32, &mut frontier);
    let mut next_frontier: Vec<u32> = Vec::new();
    while remaining > 0 {
        // All vertices whose *current* active degree is at most t are peeled
        // simultaneously (this is exactly one LOCAL round: each vertex knows
        // its active degree from the previous round's announcements).
        rounds += 1;
        if frontier.is_empty() {
            // The threshold is below (2+eps) * alpha*: the theory's
            // precondition is violated. Degrade gracefully by dumping the
            // remaining vertices into one final class.
            for v in g.vertices() {
                if active[v.index()] != 0 {
                    class_of[v.index()] = class;
                    active[v.index()] = 0;
                }
            }
            forced_classes = 1;
            class += 1;
            break;
        }
        // Deactivate the whole peel set first, then decrement: a neighbor
        // peeled in the same round must not be decremented or re-enqueued.
        for &vi in &frontier {
            class_of[vi as usize] = class;
            active[vi as usize] = 0;
            remaining -= 1;
        }
        next_frontier.clear();
        for &vi in &frontier {
            for u in g.neighbors(VertexId::new(vi as usize)) {
                let ui = u.index();
                if active[ui] != 0 {
                    let before = active_degree[ui];
                    active_degree[ui] -= 1;
                    if before > threshold_u32 && active_degree[ui] <= threshold_u32 {
                        next_frontier.push(u32_of(ui));
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
        class += 1;
    }
    ledger.charge("H-partition peeling", rounds.max(1));
    PEEL_ROUNDS.add(rounds.max(1) as u64);
    PEELED_VERTICES.add(n as u64);
    FORCED_CLASSES.add(forced_classes as u64);
    PEEL_NANOS.add(peel_start.elapsed_nanos());
    Ok(HPartition {
        class_of,
        num_classes: class,
        degree_threshold: threshold,
        forced_classes,
    })
}

/// Theorem 2.1(2): the acyclic `t`-orientation induced by an H-partition.
/// Edges are oriented from the lower class to the higher class, ties broken
/// toward the higher vertex id, so the tail is the lexicographically smaller
/// `(class, id)` endpoint.
pub fn acyclic_orientation<G: GraphView>(g: &G, partition: &HPartition) -> Orientation {
    Orientation::from_fn(g, |_, u, v| {
        let ku = (partition.class_of[u.index()], u);
        let kv = (partition.class_of[v.index()], v);
        if ku < kv {
            u
        } else {
            v
        }
    })
}

/// Labels the out-edges of every vertex with indices `0..out_degree`, giving
/// one rooted forest per label: in forest `i`, each vertex's parent is the
/// head of its `i`-th out-edge.
pub(crate) fn out_edge_labels<G: GraphView>(g: &G, orientation: &Orientation) -> Vec<usize> {
    let mut next_label = vec![0usize; g.num_vertices()];
    let mut label = vec![0usize; g.num_edges()];
    for (e, _, _) in g.edges() {
        let tail = orientation.tail(e);
        label[e.index()] = next_label[tail.index()];
        next_label[tail.index()] += 1;
    }
    label
}

/// Theorem 2.1(3): a `3t`-star-forest decomposition from an acyclic
/// `t`-orientation. Returns the decomposition; color `3i + c` holds the
/// label-`i` edges whose parent endpoint received Cole–Vishkin color `c`.
pub fn star_forest_decomposition<G: GraphView>(
    g: &G,
    orientation: &Orientation,
    ledger: &mut RoundLedger,
) -> ForestDecomposition {
    let labels = out_edge_labels(g, orientation);
    let max_label = labels.iter().copied().max().map_or(0, |l| l + 1);
    let mut colors = vec![Color::new(0); g.num_edges()];
    for i in 0..max_label {
        // Rooted forest for label i: parent of v = head of v's label-i out-edge.
        let mut parent: Vec<Option<VertexId>> = vec![None; g.num_vertices()];
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; g.num_vertices()];
        for (e, _, _) in g.edges() {
            if labels[e.index()] == i {
                let tail = orientation.tail(e);
                parent[tail.index()] = Some(orientation.head(g, e));
                parent_edge[tail.index()] = Some(e);
            }
        }
        let view = RootedForestView { parent };
        let coloring = cole_vishkin_three_coloring(&view, ledger);
        for v in g.vertices() {
            if let Some(e) = parent_edge[v.index()] {
                let parent_vertex = orientation.head(g, e);
                let c = coloring.color[parent_vertex.index()] as usize;
                colors[e.index()] = Color::new(3 * i + c);
            }
        }
    }
    ForestDecomposition::from_colors(colors)
}

/// Theorem 2.1(4): a `t`-list-forest decomposition from an acyclic
/// `t`-orientation: every vertex greedily assigns distinct palette colors to
/// its out-edges. The result is acyclic because a monochromatic cycle would
/// force some vertex to have two equally-colored out-edges.
///
/// # Errors
///
/// Returns [`FdError::PaletteTooSmall`] if some vertex has more out-edges
/// than a palette can accommodate.
pub fn list_forest_decomposition<G: GraphView>(
    g: &G,
    orientation: &Orientation,
    lists: &ListAssignment,
    ledger: &mut RoundLedger,
) -> Result<PartialEdgeColoring, FdError> {
    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
    for v in g.vertices() {
        let out_edges = orientation.out_edges(g, v);
        let mut used: Vec<Color> = Vec::with_capacity(out_edges.len());
        for e in out_edges {
            let choice = lists.palette(e).iter().copied().find(|c| !used.contains(c));
            match choice {
                Some(c) => {
                    coloring.set(e, c);
                    used.push(c);
                }
                None => {
                    return Err(FdError::PaletteTooSmall {
                        edge: e,
                        needed: used.len() + 1,
                        available: lists.palette(e).len(),
                    })
                }
            }
        }
    }
    // Every vertex acts independently on its own out-edges: one LOCAL round.
    ledger.charge("greedy out-edge list coloring", 1);
    Ok(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{
        validate_forest_decomposition, validate_list_coloring,
        validate_partial_forest_decomposition, validate_star_forest_decomposition,
    };
    use forest_graph::MultiGraph;
    use forest_graph::{generators, orientation::pseudoarboricity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, k: usize, seed: u64) -> (MultiGraph, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::planted_forest_union(n, k, &mut rng);
        let ps = pseudoarboricity(&g);
        (g, ps)
    }

    #[test]
    fn h_partition_satisfies_degree_property() {
        let (g, ps) = setup(60, 3, 1);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        assert!(hp.satisfies_degree_property(&g));
        assert_eq!(hp.forced_classes, 0);
        assert!(hp.num_classes >= 1);
        assert!(ledger.total_rounds() >= hp.num_classes);
        // Every vertex got a class.
        assert!(hp.class_of.iter().all(|&c| c != usize::MAX));
        // Classes partition the vertex set.
        let total: usize = (0..hp.num_classes)
            .map(|c| hp.vertices_in_class(c).len())
            .sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn h_partition_class_count_is_logarithmic() {
        let (g, ps) = setup(200, 2, 2);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        // O(log n / eps): generous constant for the test.
        assert!(
            hp.num_classes <= 40,
            "unexpectedly many classes: {}",
            hp.num_classes
        );
    }

    #[test]
    fn h_partition_rejects_bad_parameters() {
        let g = generators::path(4);
        let mut ledger = RoundLedger::new();
        assert!(matches!(
            h_partition(&g, 0.0, 1, &mut ledger),
            Err(FdError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            h_partition(&g, 0.5, 0, &mut ledger),
            Err(FdError::ArboricityBoundTooSmall { .. })
        ));
    }

    #[test]
    fn h_partition_degrades_gracefully_on_too_small_threshold() {
        // K6 with threshold based on a bound of 1: t = 2 < min degree 5, so
        // nothing can be peeled and everything lands in one forced class.
        let g = generators::complete_graph(6);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, 1, &mut ledger).unwrap();
        assert_eq!(hp.forced_classes, 1);
        assert!(hp.class_of.iter().all(|&c| c != usize::MAX));
    }

    #[test]
    fn orientation_is_acyclic_with_bounded_outdegree() {
        let (g, ps) = setup(80, 3, 3);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        assert!(orientation.is_acyclic(&g));
        assert!(orientation.max_out_degree(&g) <= hp.degree_threshold);
    }

    #[test]
    fn star_forest_decomposition_is_valid_with_3t_colors() {
        let (g, ps) = setup(70, 3, 4);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        let sfd = star_forest_decomposition(&g, &orientation, &mut ledger);
        validate_forest_decomposition(&g, &sfd, Some(3 * hp.degree_threshold))
            .expect("valid forest decomposition");
        validate_star_forest_decomposition(&g, &sfd, Some(3 * hp.degree_threshold))
            .expect("valid star-forest decomposition");
    }

    #[test]
    fn star_forest_on_empty_graph() {
        let g = MultiGraph::new(5);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, 1, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        let sfd = star_forest_decomposition(&g, &orientation, &mut ledger);
        assert_eq!(sfd.num_edges(), 0);
    }

    #[test]
    fn list_forest_decomposition_respects_palettes() {
        let (g, ps) = setup(50, 2, 5);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        // Random palettes of size t from a larger color space.
        let mut rng = StdRng::seed_from_u64(6);
        let lists = ListAssignment::random(
            g.num_edges(),
            3 * hp.degree_threshold,
            hp.degree_threshold,
            &mut rng,
        );
        let coloring = list_forest_decomposition(&g, &orientation, &lists, &mut ledger).unwrap();
        assert!(coloring.is_complete());
        validate_partial_forest_decomposition(&g, &coloring).expect("forest per color");
        validate_list_coloring(&g, &coloring, &lists).expect("colors from palettes");
    }

    #[test]
    fn list_forest_decomposition_detects_small_palettes() {
        let g = generators::star(5);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, 1, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        // Orientation may give the center several out-edges; a single shared
        // color cannot color them all.
        let lists = ListAssignment::uniform(g.num_edges(), 1);
        let result = list_forest_decomposition(&g, &orientation, &lists, &mut ledger);
        // Either every vertex had at most one out-edge (fine) or the palette
        // error fired; both are acceptable depending on the orientation.
        if let Err(err) = result {
            assert!(matches!(err, FdError::PaletteTooSmall { .. }));
        }
    }

    #[test]
    fn barenboim_elkin_forest_count_matches_threshold() {
        // Labelling the out-edges of the acyclic orientation directly gives a
        // t-forest decomposition (the (2+eps)-baseline); sanity-check it here
        // since it shares the helper.
        let (g, ps) = setup(60, 3, 8);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.25, ps, &mut ledger).unwrap();
        let orientation = acyclic_orientation(&g, &hp);
        let labels = out_edge_labels(&g, &orientation);
        let fd = ForestDecomposition::from_colors(labels.iter().map(|&l| Color::new(l)).collect());
        validate_forest_decomposition(&g, &fd, Some(hp.degree_threshold)).expect("t-FD");
    }
}
