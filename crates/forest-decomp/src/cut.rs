//! The `CUT` procedure of Algorithm 2 (Section 4.1, Theorem 4.2).
//!
//! When Algorithm 2 processes a cluster `C` it must make sure that every
//! monochromatic path starting in the augmentation region `C' = N^{R'}(C)`
//! stays inside the view `C'' = N^{R+R'}(C)`; otherwise verifying an
//! augmenting sequence would require looking outside the cluster's view.
//! `CUT(C', R)` removes a small set of already-colored edges of
//! `H_c[C''] = E(C'') \ E(C')` per color `c` so that `C'` becomes
//! disconnected from everything outside `C''` in every color class. The
//! removed edges across the whole run form the *leftover graph*, whose
//! pseudo-arboricity must stay `O(εα)` so it can be recolored with few extra
//! colors afterwards.
//!
//! Two strategies from Theorem 4.2 are implemented:
//!
//! * [`CutStrategy::DepthModulo`] (Theorem 4.2(1)/(2)): per color, root the
//!   trees of `H_c[C'']` at the cluster side and delete every `levels`-th
//!   depth layer at a random offset. Survivor paths have length `< 2·levels`,
//!   so choosing `levels ≤ R/2` guarantees goodness outright.
//! * [`CutStrategy::ConditionedSampling`] (Theorem 4.2(3)/(4)): the
//!   load-balanced sampling of Su–Vu extended to trees — each vertex below
//!   its load cap deletes a random outgoing edge (w.r.t. a fixed
//!   `3α`-orientation `J`) with probability `p`, so the per-vertex leftover
//!   load is bounded by the cap with probability one.
//!
//! Because the paper's "with high probability" guarantees are asymptotic, the
//! caller can request `force_good`: after the randomized removal the
//! procedure deterministically cuts any surviving core-to-outside path,
//! counting those extra removals separately so the benchmarks can report how
//! often the randomness alone sufficed.
//!
//! Vertex and edge sets are dense `&[bool]` masks indexed by id, and colors
//! are always processed in ascending order (`BTreeMap` grouping), so a CUT
//! invocation consumes its RNG in an order fixed by the topology alone —
//! same seed, same removals, byte for byte.

use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::{Color, EdgeId, GraphView, Orientation, VertexId};
use rand::Rng;
use std::collections::BTreeMap;

/// Which CUT rule to apply (Theorem 4.2).
#[derive(Clone, Debug, PartialEq)]
pub enum CutStrategy {
    /// Delete every `levels`-th depth layer (random offset) of every
    /// per-color tree. Guarantees goodness whenever `2 * levels <= R`.
    DepthModulo {
        /// Spacing between deleted layers.
        levels: usize,
    },
    /// Conditioned sampling against a fixed orientation: every vertex whose
    /// load is below `load_cap` deletes one random out-edge with probability
    /// `probability`.
    ConditionedSampling {
        /// Per-invocation deletion probability.
        probability: f64,
        /// Maximum number of deletions charged to a single vertex.
        load_cap: usize,
    },
}

/// Mutable state shared by every CUT invocation of one Algorithm 2 run.
#[derive(Clone, Debug)]
pub struct CutState {
    /// The fixed orientation `J` used by conditioned sampling (ignored by the
    /// depth-modulo rule).
    pub orientation: Option<Orientation>,
    /// Per-vertex load `L(v)`: number of deleted out-edges charged to `v`.
    pub load: Vec<usize>,
}

impl CutState {
    /// Creates a state with zero loads and no orientation.
    pub fn new(num_vertices: usize) -> Self {
        CutState {
            orientation: None,
            load: vec![0; num_vertices],
        }
    }

    /// Creates a state carrying the fixed orientation `J`.
    pub fn with_orientation(num_vertices: usize, orientation: Orientation) -> Self {
        CutState {
            orientation: Some(orientation),
            load: vec![0; num_vertices],
        }
    }

    /// Maximum load charged to any vertex so far.
    pub fn max_load(&self) -> usize {
        self.load.iter().copied().max().unwrap_or(0)
    }
}

/// Result of one CUT invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutOutcome {
    /// Edges removed by the randomized rule.
    pub removed: Vec<EdgeId>,
    /// Whether the randomized removal alone already disconnected the core
    /// from everything outside the view in every color.
    pub good: bool,
    /// Edges additionally removed by the deterministic completion (empty when
    /// `force_good` was false or the execution was already good).
    pub forced: Vec<EdgeId>,
}

impl CutOutcome {
    /// All removed edges (randomized plus forced).
    pub fn all_removed(&self) -> Vec<EdgeId> {
        let mut all = self.removed.clone();
        all.extend_from_slice(&self.forced);
        all
    }
}

/// Builds a dense id-indexed membership mask of length `len` from a set of
/// identifiers — the representation `CUT` (and Algorithm 2) uses for vertex
/// cores/views and edge sets.
pub fn dense_mask<I>(len: usize, ids: I) -> Vec<bool>
where
    I: IntoIterator,
    I::Item: Into<usize>,
{
    let mut mask = vec![false; len];
    for id in ids {
        mask[id.into()] = true;
    }
    mask
}

fn eligible_edges<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    core: &[bool],
    view: &[bool],
) -> Vec<EdgeId> {
    g.edges()
        .filter(|&(e, u, v)| {
            coloring.color(e).is_some()
                && view[u.index()]
                && view[v.index()]
                && !(core[u.index()] && core[v.index()])
        })
        .map(|(e, _, _)| e)
        .collect()
}

/// Groups the edges accepted by `keep` by their color, in ascending color
/// order (deterministic iteration, unlike a hash map).
fn edges_by_color<G, F>(
    g: &G,
    coloring: &PartialEdgeColoring,
    keep: F,
) -> BTreeMap<Color, Vec<EdgeId>>
where
    G: GraphView,
    F: Fn(EdgeId) -> bool,
{
    let mut by_color: BTreeMap<Color, Vec<EdgeId>> = BTreeMap::new();
    for e in g.edge_ids() {
        if let Some(c) = coloring.color(e) {
            if keep(e) {
                by_color.entry(c).or_default().push(e);
            }
        }
    }
    by_color
}

/// Checks goodness: no color class (over the non-removed colored edges)
/// connects a core vertex (`core[v]`) to a vertex outside the view
/// (`!view[v]`). All three sets are dense id-indexed masks.
pub fn is_good<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    removed: &[bool],
    core: &[bool],
    view: &[bool],
) -> bool {
    find_escaping_path(g, coloring, removed, core, view).is_none()
}

/// Finds a monochromatic path from the core to a vertex outside the view, if
/// one exists, as a list of edge ids (ordered from the core outward).
fn find_escaping_path<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    removed: &[bool],
    core: &[bool],
    view: &[bool],
) -> Option<Vec<EdgeId>> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let by_color = edges_by_color(g, coloring, |e| !removed[e.index()]);
    let mut in_class = vec![false; m];
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
    for (_, edges) in by_color {
        for &e in &edges {
            in_class[e.index()] = true;
        }
        // Multi-source BFS from the core over this color class.
        visited.copy_from_slice(core);
        parent_edge.fill(None);
        queue.clear();
        queue.extend(g.vertices().filter(|v| core[v.index()]));
        let mut escape = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for (w, e) in g.incidences(u) {
                if in_class[e.index()] && !visited[w.index()] {
                    visited[w.index()] = true;
                    parent_edge[w.index()] = Some(e);
                    if !view[w.index()] {
                        escape = Some(w);
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        // Undo the class mask before the next color either way.
        let found = escape.map(|w| {
            // Reconstruct the path back to the core.
            let mut path = Vec::new();
            let mut cur = w;
            while let Some(pe) = parent_edge[cur.index()] {
                path.push(pe);
                cur = g.other_endpoint(pe, cur);
                if core[cur.index()] {
                    break;
                }
            }
            path.reverse();
            path
        });
        for &e in &edges {
            in_class[e.index()] = false;
        }
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Executes `CUT(C', R)` for one cluster.
///
/// `core` is `C'`, `view` is `C''`, both as dense per-vertex masks (see
/// [`dense_mask`]); the colored edges inside the view but not inside the core
/// are eligible for removal. Removed edges are *not* cleared from `coloring`
/// here — the caller does that so it can also track the leftover set.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CUT(C', R) signature
pub fn execute_cut<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    coloring: &PartialEdgeColoring,
    core: &[bool],
    view: &[bool],
    strategy: &CutStrategy,
    state: &mut CutState,
    force_good: bool,
    rng: &mut R,
) -> CutOutcome {
    let m = g.num_edges();
    let eligible = eligible_edges(g, coloring, core, view);
    let eligible_mask = dense_mask(m, eligible.iter().copied());
    let mut removed: Vec<EdgeId> = Vec::new();
    match strategy {
        CutStrategy::DepthModulo { levels } => {
            let levels = (*levels).max(1);
            // Group eligible edges by color, ascending — the per-color RNG
            // draws below happen in a deterministic order.
            let by_color = edges_by_color(g, coloring, |e| eligible_mask[e.index()]);
            let mut in_class = vec![false; m];
            for (_, edges) in by_color {
                for &e in &edges {
                    in_class[e.index()] = true;
                }
                // Root the per-color forest, preferring roots inside the core
                // so that depth measures the distance leaving the cluster.
                let rooted = forest_graph::traversal::root_forest(
                    g,
                    |e| in_class[e.index()],
                    |v| usize::from(!core[v.index()]),
                );
                let offset = rng.gen_range(0..levels);
                for v in g.vertices() {
                    if let Some(pe) = rooted.parent_edge[v.index()] {
                        if in_class[pe.index()] && rooted.depth[v.index()] % levels == offset {
                            removed.push(pe);
                            // The deleted edge is charged to (oriented away
                            // from) the child vertex v.
                            state.load[v.index()] += 1;
                        }
                    }
                }
                for &e in &edges {
                    in_class[e.index()] = false;
                }
            }
        }
        CutStrategy::ConditionedSampling {
            probability,
            load_cap,
        } => {
            let orientation = state
                .orientation
                .clone()
                .expect("conditioned sampling requires a fixed orientation in CutState");
            let p = probability.clamp(0.0, 1.0);
            for v in g.vertices() {
                if !view[v.index()] || core[v.index()] {
                    continue;
                }
                if state.load[v.index()] >= *load_cap {
                    continue;
                }
                if !rng.gen_bool(p) {
                    continue;
                }
                let candidates: Vec<EdgeId> = orientation
                    .out_edges(g, v)
                    .into_iter()
                    .filter(|e| eligible_mask[e.index()])
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let pick = candidates[rng.gen_range(0..candidates.len())];
                removed.push(pick);
                state.load[v.index()] += 1;
            }
        }
    }
    removed.sort_unstable();
    removed.dedup();
    let mut removed_mask = dense_mask(m, removed.iter().copied());
    let good = is_good(g, coloring, &removed_mask, core, view);
    let mut forced = Vec::new();
    if force_good && !good {
        // Deterministic completion: repeatedly cut a surviving escape path at
        // an eligible edge whose charged vertex has minimum load.
        let limit = eligible.len() + 1;
        for _ in 0..limit {
            let Some(path) = find_escaping_path(g, coloring, &removed_mask, core, view) else {
                break;
            };
            let candidate = path
                .iter()
                .copied()
                .filter(|e| eligible_mask[e.index()] && !removed_mask[e.index()])
                .min_by_key(|&e| {
                    let (u, v) = g.endpoints(e);
                    state.load[u.index()].min(state.load[v.index()])
                });
            let Some(e) = candidate else {
                // Every edge of the path lies inside the core (should not
                // happen); give up rather than loop.
                break;
            };
            let (u, v) = g.endpoints(e);
            let charged = if state.load[u.index()] <= state.load[v.index()] {
                u
            } else {
                v
            };
            state.load[charged.index()] += 1;
            removed_mask[e.index()] = true;
            forced.push(e);
        }
    }
    CutOutcome {
        removed,
        good,
        forced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::orientation::min_max_outdegree_orientation;
    use forest_graph::{generators, CsrGraph, MultiGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A long path colored entirely with one color, core = first two
    /// vertices, view = first `view_len` vertices.
    fn long_path_setup(
        n: usize,
        view_len: usize,
    ) -> (MultiGraph, PartialEdgeColoring, Vec<bool>, Vec<bool>) {
        let g = generators::path(n);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(0));
        }
        let core = dense_mask(n, (0..2).map(VertexId::new));
        let view = dense_mask(n, (0..view_len).map(VertexId::new));
        (g, coloring, core, view)
    }

    #[test]
    fn ungood_configuration_is_detected() {
        let (g, coloring, core, view) = long_path_setup(30, 10);
        let none = vec![false; g.num_edges()];
        assert!(!is_good(&g, &coloring, &none, &core, &view));
        // Removing the edge that leaves the view restores goodness.
        let removed = dense_mask(g.num_edges(), [EdgeId::new(9)]);
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn depth_modulo_cut_disconnects_core_from_outside() {
        let (g, coloring, core, view) = long_path_setup(40, 12);
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 4 },
            &mut state,
            false,
            &mut rng,
        );
        // levels = 4 <= R/2 for the implied R = 10, so the cut is always good.
        assert!(outcome.good);
        assert!(outcome.forced.is_empty());
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
        // Only eligible (outside-core, inside-view) edges were touched.
        for e in &outcome.removed {
            let (u, v) = g.endpoints(*e);
            assert!(view[u.index()] && view[v.index()]);
            assert!(!(core[u.index()] && core[v.index()]));
        }
    }

    #[test]
    fn depth_modulo_load_stays_bounded() {
        let (g, coloring, core, view) = long_path_setup(60, 20);
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(6);
        execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 5 },
            &mut state,
            false,
            &mut rng,
        );
        // One color and one invocation: every vertex loses at most one parent
        // edge.
        assert!(state.max_load() <= 1);
    }

    #[test]
    fn conditioned_sampling_respects_load_cap() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::planted_forest_union(40, 3, &mut rng);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 3));
        }
        let (orientation, _) = min_max_outdegree_orientation(&g);
        let mut state = CutState::with_orientation(g.num_vertices(), orientation);
        let core = dense_mask(g.num_vertices(), (0..3).map(VertexId::new));
        let view = vec![true; g.num_vertices()];
        for _ in 0..20 {
            execute_cut(
                &g,
                &coloring,
                &core,
                &view,
                &CutStrategy::ConditionedSampling {
                    probability: 0.9,
                    load_cap: 2,
                },
                &mut state,
                false,
                &mut rng,
            );
        }
        assert!(
            state.max_load() <= 2,
            "load cap violated: {}",
            state.max_load()
        );
    }

    #[test]
    fn force_good_completes_a_weak_random_cut() {
        let (g, coloring, core, view) = long_path_setup(50, 15);
        let (orientation, _) = min_max_outdegree_orientation(&g);
        let mut state = CutState::with_orientation(g.num_vertices(), orientation);
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::ConditionedSampling {
                probability: 0.05,
                load_cap: 1,
            },
            &mut state,
            true,
            &mut rng,
        );
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn cut_ignores_uncolored_edges() {
        let (g, mut coloring, core, view) = long_path_setup(30, 10);
        // Uncolor everything: nothing is eligible and nothing can escape.
        for e in g.edge_ids() {
            coloring.clear(e);
        }
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 3 },
            &mut state,
            true,
            &mut rng,
        );
        assert!(outcome.removed.is_empty());
        assert!(outcome.good);
    }

    #[test]
    fn multi_color_paths_are_all_cut() {
        // Two interleaved colors along a path; both must be disconnected.
        let g = generators::path(40);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 2));
        }
        let core = dense_mask(g.num_vertices(), (0..2).map(VertexId::new));
        let view = dense_mask(g.num_vertices(), (0..14).map(VertexId::new));
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 3 },
            &mut state,
            true,
            &mut rng,
        );
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn same_seed_same_removals_across_runs_and_representations() {
        // Regression for the old HashMap-ordered color iteration: the RNG
        // draws per color must happen in a fixed order.
        let g = generators::fat_path(60, 3);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 3));
        }
        let core = dense_mask(g.num_vertices(), (0..3).map(VertexId::new));
        let view = dense_mask(g.num_vertices(), (0..20).map(VertexId::new));
        let csr = CsrGraph::from_multigraph(&g);
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let mut state = CutState::new(g.num_vertices());
            let mut rng = StdRng::seed_from_u64(77);
            outcomes.push(execute_cut(
                &g,
                &coloring,
                &core,
                &view,
                &CutStrategy::DepthModulo { levels: 4 },
                &mut state,
                true,
                &mut rng,
            ));
        }
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(77);
        outcomes.push(execute_cut(
            &csr,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 4 },
            &mut state,
            true,
            &mut rng,
        ));
        assert_eq!(outcomes[0], outcomes[1], "same seed must repeat exactly");
        assert_eq!(outcomes[0], outcomes[2], "CSR must match MultiGraph");
    }
}
