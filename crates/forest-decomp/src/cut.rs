//! The `CUT` procedure of Algorithm 2 (Section 4.1, Theorem 4.2).
//!
//! When Algorithm 2 processes a cluster `C` it must make sure that every
//! monochromatic path starting in the augmentation region `C' = N^{R'}(C)`
//! stays inside the view `C'' = N^{R+R'}(C)`; otherwise verifying an
//! augmenting sequence would require looking outside the cluster's view.
//! `CUT(C', R)` removes a small set of already-colored edges of
//! `H_c[C''] = E(C'') \ E(C')` per color `c` so that `C'` becomes
//! disconnected from everything outside `C''` in every color class. The
//! removed edges across the whole run form the *leftover graph*, whose
//! pseudo-arboricity must stay `O(εα)` so it can be recolored with few extra
//! colors afterwards.
//!
//! Two strategies from Theorem 4.2 are implemented:
//!
//! * [`CutStrategy::DepthModulo`] (Theorem 4.2(1)/(2)): per color, root the
//!   trees of `H_c[C'']` at the cluster side and delete every `levels`-th
//!   depth layer at a random offset. Survivor paths have length `< 2·levels`,
//!   so choosing `levels ≤ R/2` guarantees goodness outright.
//! * [`CutStrategy::ConditionedSampling`] (Theorem 4.2(3)/(4)): the
//!   load-balanced sampling of Su–Vu extended to trees — each vertex below
//!   its load cap deletes a random outgoing edge (w.r.t. a fixed
//!   `3α`-orientation `J`) with probability `p`, so the per-vertex leftover
//!   load is bounded by the cap with probability one.
//!
//! Because the paper's "with high probability" guarantees are asymptotic, the
//! caller can request `force_good`: after the randomized removal the
//! procedure deterministically cuts any surviving core-to-outside path,
//! counting those extra removals separately so the benchmarks can report how
//! often the randomness alone sufficed.
//!
//! Vertex and edge sets are dense `&[bool]` masks indexed by id, and colors
//! are always processed in ascending order (`BTreeMap` grouping), so a CUT
//! invocation consumes its RNG in an order fixed by the topology alone —
//! same seed, same removals, byte for byte.
//!
//! # Ball-local execution
//!
//! A cluster's view is a small ball, so every scan CUT performs is restricted
//! to a [`CutScope`]: the sorted core/view vertex lists and the sorted list
//! of edges with at least one endpoint in the view. (The escaping-path BFS
//! can traverse an edge whose far endpoint lies outside the view — that is
//! the escape itself — so the scope must include half-incident edges, not
//! just view-internal ones.) All per-invocation working memory lives in a
//! reusable [`CutScratch`] of epoch-stamped sets, so a run with thousands of
//! clusters performs no `O(n)` or `O(m)` work per cluster. The classic
//! whole-graph entry points [`execute_cut`] and [`is_good`] are thin wrappers
//! that build a full scope; both paths consume the RNG identically.

use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::kernels::{self, StampSet};
use forest_graph::{Color, EdgeId, GraphView, Orientation, VertexId};
use rand::Rng;
use std::collections::BTreeMap;

/// Which CUT rule to apply (Theorem 4.2).
#[derive(Clone, Debug, PartialEq)]
pub enum CutStrategy {
    /// Delete every `levels`-th depth layer (random offset) of every
    /// per-color tree. Guarantees goodness whenever `2 * levels <= R`.
    DepthModulo {
        /// Spacing between deleted layers.
        levels: usize,
    },
    /// Conditioned sampling against a fixed orientation: every vertex whose
    /// load is below `load_cap` deletes one random out-edge with probability
    /// `probability`.
    ConditionedSampling {
        /// Per-invocation deletion probability.
        probability: f64,
        /// Maximum number of deletions charged to a single vertex.
        load_cap: usize,
    },
}

/// Mutable state shared by every CUT invocation of one Algorithm 2 run.
#[derive(Clone, Debug)]
pub struct CutState {
    /// The fixed orientation `J` used by conditioned sampling (ignored by the
    /// depth-modulo rule).
    pub orientation: Option<Orientation>,
    /// Per-vertex load `L(v)`: number of deleted out-edges charged to `v`.
    pub load: Vec<usize>,
}

impl CutState {
    /// Creates a state with zero loads and no orientation.
    pub fn new(num_vertices: usize) -> Self {
        CutState {
            orientation: None,
            load: vec![0; num_vertices],
        }
    }

    /// Creates a state carrying the fixed orientation `J`.
    pub fn with_orientation(num_vertices: usize, orientation: Orientation) -> Self {
        CutState {
            orientation: Some(orientation),
            load: vec![0; num_vertices],
        }
    }

    /// Maximum load charged to any vertex so far.
    pub fn max_load(&self) -> usize {
        self.load.iter().copied().max().unwrap_or(0)
    }
}

/// Result of one CUT invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutOutcome {
    /// Edges removed by the randomized rule.
    pub removed: Vec<EdgeId>,
    /// Whether the randomized removal alone already disconnected the core
    /// from everything outside the view in every color.
    pub good: bool,
    /// Edges additionally removed by the deterministic completion (empty when
    /// `force_good` was false or the execution was already good).
    pub forced: Vec<EdgeId>,
}

impl CutOutcome {
    /// All removed edges (randomized plus forced).
    pub fn all_removed(&self) -> Vec<EdgeId> {
        let mut all = self.removed.clone();
        all.extend_from_slice(&self.forced);
        all
    }
}

/// Builds a dense id-indexed membership mask of length `len` from a set of
/// identifiers — the representation `CUT` (and Algorithm 2) uses for vertex
/// cores/views and edge sets.
pub fn dense_mask<I>(len: usize, ids: I) -> Vec<bool>
where
    I: IntoIterator,
    I::Item: Into<usize>,
{
    let mut mask = vec![false; len];
    for id in ids {
        mask[id.into()] = true;
    }
    mask
}

/// The ball-local scope of one CUT invocation.
///
/// All three lists must be sorted ascending by id; determinism (RNG draw
/// order, removal order) relies on it. `core_vertices` must be a subset of
/// `view_vertices`, and `edges` must contain every edge with **at least one**
/// endpoint in the view — the escaping-path search traverses the half-in,
/// half-out edge that constitutes the escape, so restricting the scope to
/// view-internal edges would miss it.
#[derive(Clone, Copy, Debug)]
pub struct CutScope<'a> {
    /// The core `C'`, sorted ascending.
    pub core_vertices: &'a [VertexId],
    /// The view `C''`, sorted ascending (superset of the core).
    pub view_vertices: &'a [VertexId],
    /// Every edge with at least one endpoint in the view, sorted ascending.
    pub edges: &'a [EdgeId],
}

/// Reusable working memory for scoped CUT invocations.
///
/// Every set is epoch-stamped ([`StampSet`]) and every buffer is grown on
/// demand, so resets between colors and between clusters are `O(1)` — a run
/// with thousands of clusters allocates this once and never clears an
/// `O(n)` array per cluster.
#[derive(Debug, Default)]
pub struct CutScratch {
    /// Component-discovery marks for the per-color rooting.
    comp_seen: StampSet,
    /// BFS visitation marks (rooting and escape search).
    visited: StampSet,
    /// Whether `parent_edge[v]` is valid in the current epoch.
    has_parent: StampSet,
    /// Parent edge of `v` in the current per-color tree / BFS forest.
    parent_edge: Vec<EdgeId>,
    /// BFS depth of `v`; valid only when `visited` holds `v`.
    depth: Vec<u32>,
    /// Edge membership in the current color class.
    in_class: StampSet,
    /// Eligible-edge membership for the current invocation.
    eligible: StampSet,
    /// Removed-edge membership for the current invocation.
    removed: StampSet,
    /// Flat BFS queue (head-indexed, never popped from the front).
    queue: Vec<VertexId>,
    /// Vertices of the component being rooted.
    component: Vec<VertexId>,
}

impl CutScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CutScratch::default()
    }

    fn ensure(&mut self, n: usize, m: usize) {
        self.comp_seen.resize(n);
        self.visited.resize(n);
        self.has_parent.resize(n);
        if self.parent_edge.len() < n {
            self.parent_edge.resize(n, EdgeId::new(0));
            self.depth.resize(n, 0);
        }
        self.in_class.resize(m);
        self.eligible.resize(m);
        self.removed.resize(m);
    }
}

/// Collects the full-graph scope lists for the wrapper entry points: all
/// core vertices, all view vertices, and every edge with at least one
/// endpoint in the view, each ascending.
fn full_scope<G: GraphView>(
    g: &G,
    core: &[bool],
    view: &[bool],
) -> (Vec<VertexId>, Vec<VertexId>, Vec<EdgeId>) {
    let core_vertices = g.vertices().filter(|v| core[v.index()]).collect();
    let view_vertices = g.vertices().filter(|v| view[v.index()]).collect();
    let edges = g
        .edges()
        .filter(|&(_, u, w)| view[u.index()] || view[w.index()])
        .map(|(e, _, _)| e)
        .collect();
    (core_vertices, view_vertices, edges)
}

/// Groups the scope edges accepted by `keep` by their color, in ascending
/// color order (deterministic iteration, unlike a hash map). `scope_edges`
/// is sorted, so each per-color list comes out ascending too.
fn edges_by_color_scoped<F>(
    coloring: &PartialEdgeColoring,
    scope_edges: &[EdgeId],
    keep: F,
) -> BTreeMap<Color, Vec<EdgeId>>
where
    F: Fn(EdgeId) -> bool,
{
    let mut by_color: BTreeMap<Color, Vec<EdgeId>> = BTreeMap::new();
    for &e in scope_edges {
        if let Some(c) = coloring.color(e) {
            if keep(e) {
                by_color.entry(c).or_default().push(e);
            }
        }
    }
    by_color
}

/// Checks goodness: no color class (over the non-removed colored edges)
/// connects a core vertex (`core[v]`) to a vertex outside the view
/// (`!view[v]`). All three sets are dense id-indexed masks.
pub fn is_good<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    removed: &[bool],
    core: &[bool],
    view: &[bool],
) -> bool {
    let (core_vertices, view_vertices, edges) = full_scope(g, core, view);
    let scope = CutScope {
        core_vertices: &core_vertices,
        view_vertices: &view_vertices,
        edges: &edges,
    };
    let mut scratch = CutScratch::new();
    scratch.ensure(g.num_vertices(), g.num_edges());
    let mut removed_set = StampSet::new(g.num_edges());
    for (i, &r) in removed.iter().enumerate() {
        if r {
            removed_set.insert(i);
        }
    }
    find_escaping_path_scoped(g, coloring, &removed_set, core, view, &scope, &mut scratch).is_none()
}

/// Finds a monochromatic path from the core to a vertex outside the view, if
/// one exists, as a list of edge ids (ordered from the core outward).
///
/// Only edges in `scope.edges` participate; a color class with no
/// view-incident edges cannot carry an escape (the BFS from the core never
/// expands a vertex outside the view), so skipping it is exact.
fn find_escaping_path_scoped<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    removed: &StampSet,
    core: &[bool],
    view: &[bool],
    scope: &CutScope,
    scratch: &mut CutScratch,
) -> Option<Vec<EdgeId>> {
    let by_color = edges_by_color_scoped(coloring, scope.edges, |e| !removed.contains(e.index()));
    for (_, edges) in by_color {
        scratch.in_class.clear();
        for &e in &edges {
            scratch.in_class.insert(e.index());
        }
        // Multi-source BFS from the core over this color class.
        scratch.visited.clear();
        scratch.has_parent.clear();
        scratch.queue.clear();
        for &c in scope.core_vertices {
            if scratch.visited.insert(c.index()) {
                scratch.queue.push(c);
            }
        }
        let mut escape = None;
        let mut head = 0;
        'bfs: while head < scratch.queue.len() {
            let u = scratch.queue[head];
            head += 1;
            for (w, e) in g.incidences(u) {
                if scratch.in_class.contains(e.index()) && scratch.visited.insert(w.index()) {
                    scratch.has_parent.insert(w.index());
                    scratch.parent_edge[w.index()] = e;
                    if !view[w.index()] {
                        escape = Some(w);
                        break 'bfs;
                    }
                    scratch.queue.push(w);
                }
            }
        }
        if let Some(w) = escape {
            // Reconstruct the path back to the core. `has_parent` is fresh
            // for exactly the vertices visited (beyond the core) this color,
            // so stale `parent_edge` entries are never read.
            let mut path = Vec::new();
            let mut cur = w;
            while scratch.has_parent.contains(cur.index()) {
                let pe = scratch.parent_edge[cur.index()];
                path.push(pe);
                cur = g.other_endpoint(pe, cur);
                if core[cur.index()] {
                    break;
                }
            }
            path.reverse();
            return Some(path);
        }
    }
    None
}

/// Executes `CUT(C', R)` for one cluster.
///
/// `core` is `C'`, `view` is `C''`, both as dense per-vertex masks (see
/// [`dense_mask`]); the colored edges inside the view but not inside the core
/// are eligible for removal. Removed edges are *not* cleared from `coloring`
/// here — the caller does that so it can also track the leftover set.
///
/// This whole-graph entry point scans `g` once to build the scope; hot
/// callers with many small clusters should build a [`CutScope`] per cluster
/// and call [`execute_cut_scoped`] with a shared [`CutScratch`] instead. Both
/// consume the RNG identically.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CUT(C', R) signature
pub fn execute_cut<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    coloring: &PartialEdgeColoring,
    core: &[bool],
    view: &[bool],
    strategy: &CutStrategy,
    state: &mut CutState,
    force_good: bool,
    rng: &mut R,
) -> CutOutcome {
    let (core_vertices, view_vertices, edges) = full_scope(g, core, view);
    let scope = CutScope {
        core_vertices: &core_vertices,
        view_vertices: &view_vertices,
        edges: &edges,
    };
    let mut scratch = CutScratch::new();
    execute_cut_scoped(
        g,
        coloring,
        &scope,
        core,
        view,
        strategy,
        state,
        force_good,
        rng,
        &mut scratch,
    )
}

/// Ball-local `CUT(C', R)`: identical to [`execute_cut`] (same RNG
/// consumption, same outcome), but every scan is restricted to the
/// [`CutScope`] and all working memory comes from the caller's
/// [`CutScratch`]. `core` / `view` stay dense whole-graph masks — the caller
/// maintains them incrementally via its touched-vertex lists.
#[allow(clippy::too_many_arguments)] // mirrors the paper's CUT(C', R) signature
pub fn execute_cut_scoped<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    coloring: &PartialEdgeColoring,
    scope: &CutScope,
    core: &[bool],
    view: &[bool],
    strategy: &CutStrategy,
    state: &mut CutState,
    force_good: bool,
    rng: &mut R,
    scratch: &mut CutScratch,
) -> CutOutcome {
    debug_assert!(scope.view_vertices.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(scope.core_vertices.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(scope.edges.windows(2).all(|w| w[0] < w[1]));
    scratch.ensure(g.num_vertices(), g.num_edges());
    // Eligible edges ascending (`scope.edges` is sorted and is a superset:
    // an eligible edge has both endpoints in the view, is colored, and
    // leaves the core).
    let mut eligible: Vec<EdgeId> = Vec::new();
    kernels::select_edges_masked(
        scope.edges.iter().map(|&e| {
            let (u, v) = g.endpoints(e);
            (e, u.index(), v.index())
        }),
        view,
        core,
        |e| coloring.color(e).is_some(),
        &mut eligible,
    );
    scratch.eligible.clear();
    for &e in &eligible {
        scratch.eligible.insert(e.index());
    }
    let mut removed: Vec<EdgeId> = Vec::new();
    match strategy {
        CutStrategy::DepthModulo { levels } => {
            let levels = (*levels).max(1);
            // Group eligible edges by color, ascending — the per-color RNG
            // draws below happen in a deterministic order.
            let by_color = edges_by_color_scoped(coloring, scope.edges, |e| {
                scratch.eligible.contains(e.index())
            });
            for (_, edges) in by_color {
                scratch.in_class.clear();
                for &e in &edges {
                    scratch.in_class.insert(e.index());
                }
                // Root the per-color forest, preferring roots inside the core
                // so that depth measures the distance leaving the cluster.
                // In-class edges have both endpoints in the view, so every
                // non-trivial component lies inside `scope.view_vertices`.
                scratch.comp_seen.clear();
                scratch.visited.clear();
                scratch.has_parent.clear();
                for &start in scope.view_vertices {
                    if scratch.comp_seen.contains(start.index()) {
                        continue;
                    }
                    scratch.component.clear();
                    scratch.queue.clear();
                    scratch.comp_seen.insert(start.index());
                    scratch.queue.push(start);
                    let mut head = 0;
                    while head < scratch.queue.len() {
                        let u = scratch.queue[head];
                        head += 1;
                        scratch.component.push(u);
                        for (w, e) in g.incidences(u) {
                            if scratch.in_class.contains(e.index())
                                && scratch.comp_seen.insert(w.index())
                            {
                                scratch.queue.push(w);
                            }
                        }
                    }
                    // Same root rule as `traversal::root_forest`: minimize
                    // (not-in-core, vertex id) over the component.
                    let root = scratch
                        .component
                        .iter()
                        .copied()
                        .min_by_key(|&v| (usize::from(!core[v.index()]), v))
                        .expect("component is non-empty");
                    scratch.queue.clear();
                    scratch.visited.insert(root.index());
                    scratch.depth[root.index()] = 0;
                    scratch.queue.push(root);
                    head = 0;
                    while head < scratch.queue.len() {
                        let u = scratch.queue[head];
                        head += 1;
                        for (w, e) in g.incidences(u) {
                            if scratch.in_class.contains(e.index())
                                && scratch.visited.insert(w.index())
                            {
                                scratch.has_parent.insert(w.index());
                                scratch.parent_edge[w.index()] = e;
                                scratch.depth[w.index()] = scratch.depth[u.index()] + 1;
                                scratch.queue.push(w);
                            }
                        }
                    }
                }
                let offset = rng.gen_range(0..levels);
                // Only view vertices can carry an in-class parent edge, so
                // walking the sorted view list visits the same vertices in
                // the same order as a whole-graph scan.
                for &v in scope.view_vertices {
                    if scratch.has_parent.contains(v.index())
                        && scratch.depth[v.index()] as usize % levels == offset
                    {
                        removed.push(scratch.parent_edge[v.index()]);
                        // The deleted edge is charged to (oriented away
                        // from) the child vertex v.
                        state.load[v.index()] += 1;
                    }
                }
            }
        }
        CutStrategy::ConditionedSampling {
            probability,
            load_cap,
        } => {
            // Take (not clone) the orientation: `J` is fixed for the whole
            // run and cloning it per cluster would dominate small clusters.
            let orientation = state
                .orientation
                .take()
                .expect("conditioned sampling requires a fixed orientation in CutState");
            let p = probability.clamp(0.0, 1.0);
            for &v in scope.view_vertices {
                if core[v.index()] {
                    continue;
                }
                if state.load[v.index()] >= *load_cap {
                    continue;
                }
                if !rng.gen_bool(p) {
                    continue;
                }
                let candidates: Vec<EdgeId> = orientation
                    .out_edges(g, v)
                    .into_iter()
                    .filter(|e| scratch.eligible.contains(e.index()))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let pick = candidates[rng.gen_range(0..candidates.len())];
                removed.push(pick);
                state.load[v.index()] += 1;
            }
            state.orientation = Some(orientation);
        }
    }
    removed.sort_unstable();
    removed.dedup();
    // The removed set is pulled out of the scratch so the escape search can
    // borrow the rest of the scratch mutably alongside it.
    let mut removed_set = std::mem::replace(&mut scratch.removed, StampSet::new(0));
    removed_set.clear();
    for &e in &removed {
        removed_set.insert(e.index());
    }
    let good =
        find_escaping_path_scoped(g, coloring, &removed_set, core, view, scope, scratch).is_none();
    let mut forced = Vec::new();
    if force_good && !good {
        // Deterministic completion: repeatedly cut a surviving escape path at
        // an eligible edge whose charged vertex has minimum load.
        let limit = eligible.len() + 1;
        for _ in 0..limit {
            let Some(path) =
                find_escaping_path_scoped(g, coloring, &removed_set, core, view, scope, scratch)
            else {
                break;
            };
            let candidate = path
                .iter()
                .copied()
                .filter(|&e| {
                    scratch.eligible.contains(e.index()) && !removed_set.contains(e.index())
                })
                .min_by_key(|&e| {
                    let (u, v) = g.endpoints(e);
                    state.load[u.index()].min(state.load[v.index()])
                });
            let Some(e) = candidate else {
                // Every edge of the path lies inside the core (should not
                // happen); give up rather than loop.
                break;
            };
            let (u, v) = g.endpoints(e);
            let charged = if state.load[u.index()] <= state.load[v.index()] {
                u
            } else {
                v
            };
            state.load[charged.index()] += 1;
            removed_set.insert(e.index());
            forced.push(e);
        }
    }
    scratch.removed = removed_set;
    CutOutcome {
        removed,
        good,
        forced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::orientation::min_max_outdegree_orientation;
    use forest_graph::{generators, CsrGraph, MultiGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A long path colored entirely with one color, core = first two
    /// vertices, view = first `view_len` vertices.
    fn long_path_setup(
        n: usize,
        view_len: usize,
    ) -> (MultiGraph, PartialEdgeColoring, Vec<bool>, Vec<bool>) {
        let g = generators::path(n);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(0));
        }
        let core = dense_mask(n, (0..2).map(VertexId::new));
        let view = dense_mask(n, (0..view_len).map(VertexId::new));
        (g, coloring, core, view)
    }

    #[test]
    fn ungood_configuration_is_detected() {
        let (g, coloring, core, view) = long_path_setup(30, 10);
        let none = vec![false; g.num_edges()];
        assert!(!is_good(&g, &coloring, &none, &core, &view));
        // Removing the edge that leaves the view restores goodness.
        let removed = dense_mask(g.num_edges(), [EdgeId::new(9)]);
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn depth_modulo_cut_disconnects_core_from_outside() {
        let (g, coloring, core, view) = long_path_setup(40, 12);
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 4 },
            &mut state,
            false,
            &mut rng,
        );
        // levels = 4 <= R/2 for the implied R = 10, so the cut is always good.
        assert!(outcome.good);
        assert!(outcome.forced.is_empty());
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
        // Only eligible (outside-core, inside-view) edges were touched.
        for e in &outcome.removed {
            let (u, v) = g.endpoints(*e);
            assert!(view[u.index()] && view[v.index()]);
            assert!(!(core[u.index()] && core[v.index()]));
        }
    }

    #[test]
    fn depth_modulo_load_stays_bounded() {
        let (g, coloring, core, view) = long_path_setup(60, 20);
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(6);
        execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 5 },
            &mut state,
            false,
            &mut rng,
        );
        // One color and one invocation: every vertex loses at most one parent
        // edge.
        assert!(state.max_load() <= 1);
    }

    #[test]
    fn conditioned_sampling_respects_load_cap() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::planted_forest_union(40, 3, &mut rng);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 3));
        }
        let (orientation, _) = min_max_outdegree_orientation(&g);
        let mut state = CutState::with_orientation(g.num_vertices(), orientation);
        let core = dense_mask(g.num_vertices(), (0..3).map(VertexId::new));
        let view = vec![true; g.num_vertices()];
        for _ in 0..20 {
            execute_cut(
                &g,
                &coloring,
                &core,
                &view,
                &CutStrategy::ConditionedSampling {
                    probability: 0.9,
                    load_cap: 2,
                },
                &mut state,
                false,
                &mut rng,
            );
        }
        assert!(
            state.max_load() <= 2,
            "load cap violated: {}",
            state.max_load()
        );
    }

    #[test]
    fn force_good_completes_a_weak_random_cut() {
        let (g, coloring, core, view) = long_path_setup(50, 15);
        let (orientation, _) = min_max_outdegree_orientation(&g);
        let mut state = CutState::with_orientation(g.num_vertices(), orientation);
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::ConditionedSampling {
                probability: 0.05,
                load_cap: 1,
            },
            &mut state,
            true,
            &mut rng,
        );
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn cut_ignores_uncolored_edges() {
        let (g, mut coloring, core, view) = long_path_setup(30, 10);
        // Uncolor everything: nothing is eligible and nothing can escape.
        for e in g.edge_ids() {
            coloring.clear(e);
        }
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 3 },
            &mut state,
            true,
            &mut rng,
        );
        assert!(outcome.removed.is_empty());
        assert!(outcome.good);
    }

    #[test]
    fn multi_color_paths_are_all_cut() {
        // Two interleaved colors along a path; both must be disconnected.
        let g = generators::path(40);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 2));
        }
        let core = dense_mask(g.num_vertices(), (0..2).map(VertexId::new));
        let view = dense_mask(g.num_vertices(), (0..14).map(VertexId::new));
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 3 },
            &mut state,
            true,
            &mut rng,
        );
        let removed = dense_mask(g.num_edges(), outcome.all_removed());
        assert!(is_good(&g, &coloring, &removed, &core, &view));
    }

    #[test]
    fn same_seed_same_removals_across_runs_and_representations() {
        // Regression for the old HashMap-ordered color iteration: the RNG
        // draws per color must happen in a fixed order.
        let g = generators::fat_path(60, 3);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            coloring.set(e, Color::new(e.index() % 3));
        }
        let core = dense_mask(g.num_vertices(), (0..3).map(VertexId::new));
        let view = dense_mask(g.num_vertices(), (0..20).map(VertexId::new));
        let csr = CsrGraph::from_multigraph(&g);
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let mut state = CutState::new(g.num_vertices());
            let mut rng = StdRng::seed_from_u64(77);
            outcomes.push(execute_cut(
                &g,
                &coloring,
                &core,
                &view,
                &CutStrategy::DepthModulo { levels: 4 },
                &mut state,
                true,
                &mut rng,
            ));
        }
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(77);
        outcomes.push(execute_cut(
            &csr,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels: 4 },
            &mut state,
            true,
            &mut rng,
        ));
        assert_eq!(outcomes[0], outcomes[1], "same seed must repeat exactly");
        assert_eq!(outcomes[0], outcomes[2], "CSR must match MultiGraph");
    }
}
