//! Augmenting sequences for list-forest decomposition (Section 3).
//!
//! Given a partial list-forest decomposition `ψ` and an uncolored edge `e`,
//! an *augmenting sequence* `P = (e₁,c₁, .., e_ℓ,c_ℓ)` satisfies (A1)–(A5) of
//! the paper; applying it colors `e₁ = e` while keeping every color class a
//! forest (Lemma 3.1). Theorem 3.2 shows that when every palette has
//! `(1+ε)α` colors, such a sequence exists within the `O(log n / ε)`
//! neighborhood of `e`; Algorithm 1 finds an *almost* augmenting sequence
//! (possibly violating (A3)) by breadth-first growth of an edge set `E_i`,
//! and Proposition 3.4 short-circuits it into a genuine augmenting sequence.
//!
//! The search is generic over [`GraphView`], so Algorithm 2 can run it over a
//! frozen [`CsrGraph`](forest_graph::CsrGraph); its working state is dense
//! (`Vec`s indexed by edge/vertex id, with the edge set `E_i` kept in
//! insertion order), so growth is allocation-light and deterministic.

use crate::error::FdError;
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::traversal::path_between;
use forest_graph::{Color, EdgeId, GraphView, ListAssignment, MultiGraph};
use std::collections::VecDeque;

/// The per-color union-find connectivity cache, now shared workspace-wide
/// (the matroid partition and shard-boundary stitching use the same
/// structure). Re-exported here because the augmenting search is its primary
/// consumer and its original home.
pub use forest_graph::connectivity::ColorConnectivity;

/// The fully-dynamic per-color cache: recolorings are two `O(log² n)` edits
/// instead of an invalidate-and-rebuild, so multi-step augmentations stop
/// paying `O(m)` per touched color. Used by
/// [`AugmentationContext::augment_edge_dynamic`], the exact-α stitch, and
/// the streaming `DynamicDecomposer`.
pub use forest_graph::connectivity::DynamicColorConnectivity;

/// One augmenting sequence: the ordered `(edge, color)` steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AugmentingSequence {
    /// The `(e_i, c_i)` steps, starting with the uncolored edge.
    pub steps: Vec<(EdgeId, Color)>,
}

impl AugmentingSequence {
    /// Length `ℓ` of the sequence.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Dense working state of one Algorithm 1 growth: the edge set `E_i` as a
/// membership mask plus insertion-ordered list, the set of vertices touched
/// by `E_i` (for O(1) adjacency tests), and the parent pointers.
struct GrowthState {
    in_set: Vec<bool>,
    ordered: Vec<EdgeId>,
    touched: Vec<bool>,
    parent: Vec<Option<EdgeId>>,
}

impl GrowthState {
    fn new<G: GraphView>(g: &G, start: EdgeId) -> Self {
        let mut state = GrowthState {
            in_set: vec![false; g.num_edges()],
            ordered: Vec::new(),
            touched: vec![false; g.num_vertices()],
            parent: vec![None; g.num_edges()],
        };
        state.insert(g, start, None);
        state
    }

    fn insert<G: GraphView>(&mut self, g: &G, e: EdgeId, parent: Option<EdgeId>) {
        self.in_set[e.index()] = true;
        self.ordered.push(e);
        self.parent[e.index()] = parent;
        let (u, v) = g.endpoints(e);
        self.touched[u.index()] = true;
        self.touched[v.index()] = true;
    }

    fn len(&self) -> usize {
        self.ordered.len()
    }
}

/// The search context: the graph, the palettes and an optional restriction of
/// the search to a subset of edges (used by Algorithm 2 to stay inside a
/// cluster's view `C''`).
#[derive(Clone, Copy)]
pub struct AugmentationContext<'a, G: GraphView = MultiGraph> {
    /// The underlying graph topology.
    pub graph: &'a G,
    /// The per-edge palettes.
    pub lists: &'a ListAssignment,
    /// If set, only the edges whose mask entry is `true` may participate in
    /// the search (both as sequence elements and as path edges).
    pub allowed: Option<&'a [bool]>,
}

impl<'a, G: GraphView> AugmentationContext<'a, G> {
    /// Context over the whole graph.
    pub fn new(graph: &'a G, lists: &'a ListAssignment) -> Self {
        AugmentationContext {
            graph,
            lists,
            allowed: None,
        }
    }

    /// Context restricted to the edges whose entry in the dense `allowed`
    /// mask (indexed by edge id) is `true`.
    pub fn restricted(graph: &'a G, lists: &'a ListAssignment, allowed: &'a [bool]) -> Self {
        AugmentationContext {
            graph,
            lists,
            allowed: Some(allowed),
        }
    }

    fn edge_allowed(&self, e: EdgeId) -> bool {
        self.allowed.is_none_or(|mask| mask[e.index()])
    }

    /// `C(e, c)`: the unique path between the endpoints of `e` in the
    /// color-`c` forest (not using `e` itself), or `None` if the endpoints
    /// are disconnected in that forest.
    pub fn color_path(
        &self,
        coloring: &PartialEdgeColoring,
        e: EdgeId,
        c: Color,
    ) -> Option<Vec<EdgeId>> {
        let (u, v) = self.graph.endpoints(e);
        path_between(self.graph, u, v, |x| {
            x != e && coloring.color(x) == Some(c) && self.edge_allowed(x)
        })
    }

    /// Finds an *almost* augmenting sequence from the uncolored edge `start`
    /// (Algorithm 1): it satisfies (A1), (A2), (A4), (A5) but possibly not
    /// (A3). Returns `None` if no sequence is found within `max_iterations`
    /// growth iterations.
    ///
    /// # Panics
    ///
    /// Panics if `start` is already colored.
    pub fn find_almost_augmenting_sequence(
        &self,
        coloring: &PartialEdgeColoring,
        start: EdgeId,
        max_iterations: usize,
    ) -> Option<AugmentingSequence> {
        assert!(
            coloring.color(start).is_none(),
            "augmenting sequences start at an uncolored edge"
        );
        let g = self.graph;
        let mut state = GrowthState::new(g, start);
        let build_sequence = |terminal: EdgeId,
                              terminal_color: Color,
                              state: &GrowthState,
                              coloring: &PartialEdgeColoring|
         -> AugmentingSequence {
            let mut steps = vec![(terminal, terminal_color)];
            let mut cur = terminal;
            while cur != start {
                let p = state.parent[cur.index()].expect("parents chain back to the start edge");
                let color_of_cur = coloring
                    .color(cur)
                    .expect("every non-start sequence edge is colored");
                steps.push((p, color_of_cur));
                cur = p;
            }
            steps.reverse();
            AugmentingSequence { steps }
        };
        for _ in 0..max_iterations {
            // E_i is state.ordered[..frontier_len]; adjacency tests run
            // against E_i's endpoints as of the start of the iteration.
            let frontier_len = state.len();
            let touched_snapshot = state.touched.clone();
            for snapshot_index in 0..frontier_len {
                let e = state.ordered[snapshot_index];
                for &c in self.lists.palette(e) {
                    if coloring.color(e) == Some(c) {
                        continue;
                    }
                    match self.color_path(coloring, e, c) {
                        None => {
                            // C(e, c) is empty: almost augmenting sequence found.
                            return Some(build_sequence(e, c, &state, coloring));
                        }
                        Some(path) => {
                            for x in path {
                                if state.in_set[x.index()] || !self.edge_allowed(x) {
                                    continue;
                                }
                                // Only edges adjacent to the current edge set
                                // E_i join E_{i+1} (Algorithm 1, line 7).
                                let (u, v) = g.endpoints(x);
                                if touched_snapshot[u.index()] || touched_snapshot[v.index()] {
                                    state.insert(g, x, Some(e));
                                }
                            }
                        }
                    }
                }
            }
            if state.len() == frontier_len {
                // No growth: with valid preconditions this cannot happen
                // before termination; bail out to avoid looping forever.
                return None;
            }
        }
        None
    }

    /// Records the size of the growing edge set `E_i` of Algorithm 1 for each
    /// iteration until an almost augmenting sequence is found (or the
    /// iteration cap is hit). Used by the benchmark harness to reproduce the
    /// `(1+ε)` growth behaviour illustrated in Figure 2 of the paper.
    pub fn growth_trace(
        &self,
        coloring: &PartialEdgeColoring,
        start: EdgeId,
        max_iterations: usize,
    ) -> Vec<usize> {
        assert!(coloring.color(start).is_none());
        let g = self.graph;
        let mut state = GrowthState::new(g, start);
        let mut trace = vec![state.len()];
        for _ in 0..max_iterations {
            let frontier_len = state.len();
            let touched_snapshot = state.touched.clone();
            let mut terminated = false;
            for snapshot_index in 0..frontier_len {
                let e = state.ordered[snapshot_index];
                for &c in self.lists.palette(e) {
                    if coloring.color(e) == Some(c) {
                        continue;
                    }
                    match self.color_path(coloring, e, c) {
                        None => {
                            terminated = true;
                        }
                        Some(path) => {
                            for x in path {
                                if !state.in_set[x.index()] && self.edge_allowed(x) {
                                    let (u, v) = g.endpoints(x);
                                    if touched_snapshot[u.index()] || touched_snapshot[v.index()] {
                                        state.insert(g, x, Some(e));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if terminated || state.len() == frontier_len {
                break;
            }
            trace.push(state.len());
        }
        trace
    }

    /// Proposition 3.4: short-circuits an almost augmenting sequence into a
    /// genuine augmenting sequence (restoring property (A3)) by repeatedly
    /// splicing out detours.
    pub fn short_circuit(
        &self,
        coloring: &PartialEdgeColoring,
        sequence: AugmentingSequence,
    ) -> AugmentingSequence {
        let mut steps = sequence.steps;
        'outer: loop {
            for i in 2..steps.len() {
                for j in 0..i.saturating_sub(1) {
                    let (ej, cj) = steps[j];
                    let (ei, _) = steps[i];
                    if let Some(path) = self.color_path(coloring, ej, cj) {
                        if path.contains(&ei) {
                            // Splice: keep 0..=j, then continue from i.
                            let mut new_steps = steps[..=j].to_vec();
                            new_steps.extend_from_slice(&steps[i..]);
                            steps = new_steps;
                            continue 'outer;
                        }
                    }
                }
            }
            break;
        }
        AugmentingSequence { steps }
    }

    /// Finds a genuine augmenting sequence from the uncolored edge `start`
    /// (Algorithm 1 followed by Proposition 3.4).
    pub fn find_augmenting_sequence(
        &self,
        coloring: &PartialEdgeColoring,
        start: EdgeId,
        max_iterations: usize,
    ) -> Option<AugmentingSequence> {
        let almost = self.find_almost_augmenting_sequence(coloring, start, max_iterations)?;
        Some(self.short_circuit(coloring, almost))
    }

    /// Checks properties (A1)–(A5) of an augmenting sequence with respect to
    /// the current coloring.
    pub fn is_valid_augmenting_sequence(
        &self,
        coloring: &PartialEdgeColoring,
        sequence: &AugmentingSequence,
    ) -> bool {
        let steps = &sequence.steps;
        if steps.is_empty() {
            return false;
        }
        // (A1) the first edge is uncolored.
        if coloring.color(steps[0].0).is_some() {
            return false;
        }
        // (A5) every color comes from the edge's palette.
        if steps.iter().any(|&(e, c)| !self.lists.contains(e, c)) {
            return false;
        }
        // (A2) e_i lies on C(e_{i-1}, c_{i-1}).
        for i in 1..steps.len() {
            let (prev_e, prev_c) = steps[i - 1];
            match self.color_path(coloring, prev_e, prev_c) {
                Some(path) if path.contains(&steps[i].0) => {}
                _ => return false,
            }
        }
        // (A3) e_i does not lie on C(e_j, c_j) for j < i - 1.
        for i in 2..steps.len() {
            for j in 0..i - 1 {
                let (ej, cj) = steps[j];
                if let Some(path) = self.color_path(coloring, ej, cj) {
                    if path.contains(&steps[i].0) {
                        return false;
                    }
                }
            }
        }
        // (A4) the last step closes no cycle.
        let (last_e, last_c) = *steps.last().expect("non-empty sequence");
        self.color_path(coloring, last_e, last_c).is_none()
    }

    /// Colors one uncolored edge by finding and applying an augmenting
    /// sequence.
    ///
    /// # Errors
    ///
    /// Returns [`FdError::AugmentationFailed`] if no augmenting sequence is
    /// found within `max_iterations` iterations (which indicates the palettes
    /// are too small for the graph's arboricity or the restriction is too
    /// tight).
    pub fn augment_edge(
        &self,
        coloring: &mut PartialEdgeColoring,
        start: EdgeId,
        max_iterations: usize,
    ) -> Result<AugmentingSequence, FdError> {
        let sequence = self
            .find_augmenting_sequence(coloring, start, max_iterations)
            .ok_or(FdError::AugmentationFailed { edge: start })?;
        apply_augmentation(coloring, &sequence);
        Ok(sequence)
    }

    /// [`AugmentationContext::augment_edge`] with a connectivity fast path:
    /// when some palette color's forest keeps the endpoints of `start` apart
    /// (the common case), the single-step sequence is found with a union-find
    /// query instead of a breadth-first growth — the produced sequence is
    /// identical to what the full search would return.
    ///
    /// `conn` must have been created for this context's `(coloring, allowed)`
    /// evolution and is kept consistent across calls.
    ///
    /// # Errors
    ///
    /// Same as [`AugmentationContext::augment_edge`].
    pub fn augment_edge_connected(
        &self,
        coloring: &mut PartialEdgeColoring,
        conn: &mut ColorConnectivity,
        start: EdgeId,
        max_iterations: usize,
    ) -> Result<AugmentingSequence, FdError> {
        assert!(
            coloring.color(start).is_none(),
            "augmenting sequences start at an uncolored edge"
        );
        let (u, v) = self.graph.endpoints(start);
        let allowed = |e: EdgeId| self.edge_allowed(e);
        let filter: Option<&dyn Fn(EdgeId) -> bool> = Some(&allowed);
        // Fast path: the slow search's first growth iteration returns the
        // single step (start, c) for the first palette color c with no path
        // between the endpoints — exactly the first disconnected forest.
        for &c in self.lists.palette(start) {
            if coloring.color(start) == Some(c) {
                continue;
            }
            if !conn.connected(self.graph, coloring, filter, c, u, v) {
                coloring.set(start, c);
                conn.insert(c, u, v);
                return Ok(AugmentingSequence {
                    steps: vec![(start, c)],
                });
            }
        }
        // Every palette color is blocked: run the full search and invalidate
        // whatever the applied sequence recolored.
        let sequence = self
            .find_augmenting_sequence(coloring, start, max_iterations)
            .ok_or(FdError::AugmentationFailed { edge: start })?;
        for &(e, c) in &sequence.steps {
            if let Some(old) = coloring.color(e) {
                conn.invalidate(old);
            }
            conn.invalidate(c);
        }
        apply_augmentation(coloring, &sequence);
        Ok(sequence)
    }

    /// [`AugmentationContext::augment_edge_connected`] on the fully-dynamic
    /// cache: the fast path is the same union-query shortcut, but when the
    /// full search *does* recolor a multi-step sequence, every step is
    /// replayed into `conn` as a cheap cut-and-link edit
    /// ([`DynamicColorConnectivity::recolor`]) instead of invalidating the
    /// touched colors for an `O(m)`-per-color rebuild on next use. This is
    /// the right variant when augmentations are frequent relative to edges
    /// — exchange-heavy recoloring over **list palettes**. (The Forest-only
    /// streaming `DynamicDecomposer` has no palettes and drives the uniform
    /// matroid exchange `forest_graph::matroid::try_augment_traced`
    /// directly; this method is its palette-constrained counterpart, for
    /// list workloads that repair under churn.)
    ///
    /// `conn` must mirror this context's `(coloring, allowed)` evolution:
    /// seed it with
    /// [`DynamicColorConnectivity::from_coloring`] (passing the same
    /// restriction) and it stays exact across any number of calls.
    ///
    /// # Errors
    ///
    /// Same as [`AugmentationContext::augment_edge`].
    pub fn augment_edge_dynamic(
        &self,
        coloring: &mut PartialEdgeColoring,
        conn: &mut DynamicColorConnectivity,
        start: EdgeId,
        max_iterations: usize,
    ) -> Result<AugmentingSequence, FdError> {
        assert!(
            coloring.color(start).is_none(),
            "augmenting sequences start at an uncolored edge"
        );
        let (u, v) = self.graph.endpoints(start);
        for &c in self.lists.palette(start) {
            if !conn.connected(c, u, v) {
                coloring.set(start, c);
                conn.insert(start, c, u, v);
                return Ok(AugmentingSequence {
                    steps: vec![(start, c)],
                });
            }
        }
        // Every palette color is blocked: run the full search and replay the
        // applied steps as dynamic edits.
        let sequence = self
            .find_augmenting_sequence(coloring, start, max_iterations)
            .ok_or(FdError::AugmentationFailed { edge: start })?;
        for &(e, c) in &sequence.steps {
            let (eu, ev) = self.graph.endpoints(e);
            conn.recolor(e, c, eu, ev);
        }
        apply_augmentation(coloring, &sequence);
        Ok(sequence)
    }
}

/// Applies an augmenting sequence: `ψ'(e_i) = c_i` for every step.
pub fn apply_augmentation(coloring: &mut PartialEdgeColoring, sequence: &AugmentingSequence) {
    for &(e, c) in &sequence.steps {
        coloring.set(e, c);
    }
}

/// Colors every uncolored edge of the graph by repeated augmentation
/// (the centralized use of Section 3, also the engine behind Algorithm 2's
/// per-cluster step). Edges are processed in BFS order from low ids.
///
/// # Errors
///
/// Returns [`FdError::AugmentationFailed`] if some edge cannot be colored.
pub fn complete_by_augmentation<G: GraphView>(
    g: &G,
    lists: &ListAssignment,
    coloring: &mut PartialEdgeColoring,
    max_iterations: usize,
) -> Result<usize, FdError> {
    let ctx = AugmentationContext::new(g, lists);
    let mut conn = ColorConnectivity::new(g.num_vertices());
    let mut queue: VecDeque<EdgeId> = coloring.uncolored_edges().into();
    let mut augmentations = 0usize;
    while let Some(e) = queue.pop_front() {
        if coloring.color(e).is_some() {
            continue;
        }
        ctx.augment_edge_connected(coloring, &mut conn, e, max_iterations)?;
        augmentations += 1;
    }
    Ok(augmentations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{
        validate_list_coloring, validate_partial_forest_decomposition,
    };
    use forest_graph::{generators, matroid, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of growth iterations comfortably above the `O(log n / ε)` bound
    /// for the small test graphs.
    const ITER: usize = 200;

    #[test]
    fn color_path_identifies_unique_forest_path() {
        // Path 0-1-2-3 all color 0, plus an uncolored chord 0-3.
        let mut g = generators::path(4);
        let chord = g
            .add_edge(
                forest_graph::VertexId::new(0),
                forest_graph::VertexId::new(3),
            )
            .unwrap();
        let lists = ListAssignment::uniform(g.num_edges(), 2);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for i in 0..3 {
            coloring.set(EdgeId::new(i), Color::new(0));
        }
        let ctx = AugmentationContext::new(&g, &lists);
        let path = ctx.color_path(&coloring, chord, Color::new(0)).unwrap();
        assert_eq!(path.len(), 3);
        assert!(ctx.color_path(&coloring, chord, Color::new(1)).is_none());
    }

    #[test]
    fn augmenting_a_single_uncolored_edge_on_a_cycle() {
        // A triangle with 2 colors: color edges 0,1 with color 0; edge 2 is
        // uncolored. Directly coloring it with color 0 closes a cycle, so the
        // augmentation must either use color 1 or recolor along the way.
        let g = generators::cycle(3);
        let lists = ListAssignment::uniform(3, 2);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(EdgeId::new(0), Color::new(0));
        coloring.set(EdgeId::new(1), Color::new(0));
        let ctx = AugmentationContext::new(&g, &lists);
        let seq = ctx
            .find_augmenting_sequence(&coloring, EdgeId::new(2), ITER)
            .expect("sequence exists");
        assert!(ctx.is_valid_augmenting_sequence(&coloring, &seq));
        apply_augmentation(&mut coloring, &seq);
        assert!(coloring.is_complete());
        validate_partial_forest_decomposition(&g, &coloring).expect("still a forest per color");
        validate_list_coloring(&g, &coloring, &lists).expect("respects palettes");
    }

    #[test]
    fn augmentation_preserves_partial_forest_property() {
        // Random multigraph with planted arboricity 3 and palettes of size 4:
        // color edges one at a time and validate after every augmentation
        // (Lemma 3.1).
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::planted_forest_union(24, 3, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 1);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        let ctx = AugmentationContext::new(&g, &lists);
        for e in g.edge_ids() {
            if coloring.color(e).is_some() {
                continue;
            }
            let seq = ctx
                .find_augmenting_sequence(&coloring, e, ITER)
                .expect("sequence exists with alpha+1 palettes");
            assert!(ctx.is_valid_augmenting_sequence(&coloring, &seq));
            apply_augmentation(&mut coloring, &seq);
            validate_partial_forest_decomposition(&g, &coloring)
                .expect("forest property preserved after every augmentation");
        }
        assert!(coloring.is_complete());
        validate_list_coloring(&g, &coloring, &lists).expect("respects palettes");
    }

    #[test]
    fn complete_by_augmentation_colors_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::planted_forest_union(30, 2, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 1);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        let augmentations =
            complete_by_augmentation(&g, &lists, &mut coloring, ITER).expect("completes");
        assert_eq!(augmentations, g.num_edges());
        assert!(coloring.is_complete());
        validate_partial_forest_decomposition(&g, &coloring).expect("valid LFD");
    }

    #[test]
    fn complete_by_augmentation_with_random_palettes() {
        // List version: random palettes of size alpha+2 from a larger space.
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::planted_forest_union(20, 2, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::random(g.num_edges(), 2 * (alpha + 2), alpha + 2, &mut rng);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        complete_by_augmentation(&g, &lists, &mut coloring, ITER).expect("completes");
        validate_partial_forest_decomposition(&g, &coloring).expect("valid LFD");
        validate_list_coloring(&g, &coloring, &lists).expect("respects palettes");
    }

    #[test]
    fn csr_and_multigraph_find_identical_sequences() {
        // The dense search is deterministic and representation-independent:
        // the same coloring state yields the same sequence on both layouts.
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::planted_forest_union(28, 3, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 1);
        let csr = CsrGraph::from_multigraph(&g);
        let mut c_mg = PartialEdgeColoring::new_uncolored(g.num_edges());
        let mut c_csr = c_mg.clone();
        let ctx_mg = AugmentationContext::new(&g, &lists);
        let ctx_csr = AugmentationContext::new(&csr, &lists);
        for e in g.edge_ids() {
            if c_mg.color(e).is_none() {
                let a = ctx_mg.augment_edge(&mut c_mg, e, ITER).unwrap();
                let b = ctx_csr.augment_edge(&mut c_csr, e, ITER).unwrap();
                assert_eq!(a, b);
            }
        }
        assert_eq!(c_mg, c_csr);
    }

    #[test]
    fn dynamic_and_union_find_fast_paths_agree() {
        // The dynamic cache answers the same connectivity questions as the
        // lazily-rebuilt union-find cache, so both variants color the graph
        // identically — the dynamic one just pays O(log² n) per recoloring
        // instead of an O(m) rebuild per touched color.
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::planted_forest_union(26, 3, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 1);
        let ctx = AugmentationContext::new(&g, &lists);
        let mut c_uf = PartialEdgeColoring::new_uncolored(g.num_edges());
        let mut c_dyn = c_uf.clone();
        let mut uf_conn = ColorConnectivity::new(g.num_vertices());
        let mut dyn_conn = DynamicColorConnectivity::new(g.num_vertices());
        for e in g.edge_ids() {
            if c_uf.color(e).is_some() {
                continue;
            }
            let a = ctx
                .augment_edge_connected(&mut c_uf, &mut uf_conn, e, ITER)
                .unwrap();
            let b = ctx
                .augment_edge_dynamic(&mut c_dyn, &mut dyn_conn, e, ITER)
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(c_uf, c_dyn);
        validate_partial_forest_decomposition(&g, &c_dyn).expect("valid decomposition");
    }

    #[test]
    fn augmentation_fails_gracefully_when_palettes_too_small() {
        // A fat path with multiplicity 3 cannot be list-forest-decomposed
        // with 2 colors; the search must give up rather than loop.
        let g = generators::fat_path(4, 3);
        let lists = ListAssignment::uniform(g.num_edges(), 2);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        let result = complete_by_augmentation(&g, &lists, &mut coloring, 50);
        assert!(matches!(result, Err(FdError::AugmentationFailed { .. })));
    }

    #[test]
    fn restricted_context_stays_inside_allowed_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_forest_union(16, 2, &mut rng);
        let lists = ListAssignment::uniform(g.num_edges(), 4);
        let coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        let mut allowed = vec![false; g.num_edges()];
        for e in g.edge_ids().take(g.num_edges() / 2) {
            allowed[e.index()] = true;
        }
        let start = EdgeId::new(0);
        let ctx = AugmentationContext::restricted(&g, &lists, &allowed);
        if let Some(seq) = ctx.find_augmenting_sequence(&coloring, start, ITER) {
            assert!(seq.steps.iter().all(|&(e, _)| allowed[e.index()]));
        }
    }

    #[test]
    fn sequence_on_uncolored_graph_is_single_step() {
        // With an entirely uncolored graph, the first color examined has an
        // empty forest, so the sequence is the single step (e, c).
        let g = generators::cycle(4);
        let lists = ListAssignment::uniform(4, 2);
        let coloring = PartialEdgeColoring::new_uncolored(4);
        let ctx = AugmentationContext::new(&g, &lists);
        let seq = ctx
            .find_augmenting_sequence(&coloring, EdgeId::new(0), ITER)
            .unwrap();
        assert_eq!(seq.len(), 1);
        assert!(ctx.is_valid_augmenting_sequence(&coloring, &seq));
    }

    #[test]
    fn validity_check_rejects_bad_sequences() {
        let g = generators::cycle(3);
        let lists = ListAssignment::uniform(3, 2);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(EdgeId::new(0), Color::new(0));
        let ctx = AugmentationContext::new(&g, &lists);
        // Starting at a colored edge violates (A1).
        let bad = AugmentingSequence {
            steps: vec![(EdgeId::new(0), Color::new(1))],
        };
        assert!(!ctx.is_valid_augmenting_sequence(&coloring, &bad));
        // A color outside the palette violates (A5).
        let bad = AugmentingSequence {
            steps: vec![(EdgeId::new(2), Color::new(9))],
        };
        assert!(!ctx.is_valid_augmenting_sequence(&coloring, &bad));
        // Empty sequences are rejected.
        let bad = AugmentingSequence { steps: vec![] };
        assert!(!ctx.is_valid_augmenting_sequence(&coloring, &bad));
    }

    #[test]
    fn sequence_lengths_stay_local() {
        // Theorem 3.2: the augmenting sequence stays within an O(log n / eps)
        // radius. We check the much weaker but concrete property that the
        // sequences on a planted graph with one extra color stay short.
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::planted_forest_union(40, 3, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 2);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        let ctx = AugmentationContext::new(&g, &lists);
        let mut max_len = 0usize;
        for e in g.edge_ids() {
            if coloring.color(e).is_some() {
                continue;
            }
            let seq = ctx.find_augmenting_sequence(&coloring, e, ITER).unwrap();
            max_len = max_len.max(seq.len());
            apply_augmentation(&mut coloring, &seq);
        }
        assert!(max_len <= 30, "augmenting sequences too long: {max_len}");
    }
}
