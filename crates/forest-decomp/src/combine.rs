//! End-to-end pipelines: Theorem 4.6 (forest decomposition) and
//! Theorem 4.10 (list-forest decomposition).
//!
//! Theorem 4.6 composes the pieces for ordinary colors: Algorithm 2 with a
//! slightly shrunk `ε` colors all edges except the CUT leftover; the leftover
//! has pseudo-arboricity `O(εα)` and is recolored into `O(εα)` star forests
//! via Theorem 2.1(3); an optional diameter-reduction pass (Corollary 2.5)
//! brings every tree down to `O(log n/ε)` or `O(1/ε)` diameter.
//!
//! Theorem 4.10 handles per-edge palettes: a vertex-color-splitting
//! (Theorem 4.9) reserves a back-up side `Q₁` of every palette; Algorithm 2
//! runs on the main side `Q₀`; the leftover is recolored from `Q₁` (by
//! Theorem 2.3 when the back-up palettes are large enough, otherwise by
//! direct augmentation on the leftover subgraph); Proposition 4.8 guarantees
//! the merge of the two sides is still a list-forest decomposition.

use crate::algorithm2::{algorithm2_frozen, Algorithm2Config, CutStrategyKind};
use crate::augmenting::complete_by_augmentation;
use crate::color_splitting::split_colors_clustered;
use crate::diameter_reduction::{reduce_diameter, DiameterTarget};
use crate::error::{check_epsilon, FdError};
use crate::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use crate::lsfd_degeneracy::list_star_forest_decomposition_degeneracy;
use forest_graph::decomposition::{
    max_forest_diameter, merge_disjoint_colorings, validate_list_coloring,
    validate_partial_forest_decomposition, PartialEdgeColoring,
};
use forest_graph::{Color, EdgeId, ForestDecomposition, GraphView, ListAssignment, MultiGraph};
use local_model::RoundLedger;
use rand::Rng;
use std::collections::HashSet;

/// Options shared by the end-to-end pipelines.
#[derive(Clone, Debug)]
pub struct FdOptions {
    /// Slack parameter `ε`.
    pub epsilon: f64,
    /// Arboricity bound (`None` = compute exactly with the matroid baseline).
    pub alpha: Option<usize>,
    /// CUT rule for Algorithm 2.
    pub cut: CutStrategyKind,
    /// Optional diameter-reduction pass at the end (ordinary colors only).
    pub diameter_target: Option<DiameterTarget>,
    /// Optional override of Algorithm 2's radii `(R, R')`, for benchmarks
    /// that want to exercise the CUT machinery on small graphs.
    pub radii: Option<(usize, usize)>,
}

impl FdOptions {
    /// Default options for the given `ε`.
    pub fn new(epsilon: f64) -> Self {
        FdOptions {
            epsilon,
            alpha: None,
            cut: CutStrategyKind::DepthModulo,
            diameter_target: None,
            radii: None,
        }
    }

    /// Fixes the arboricity bound.
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Requests a diameter-reduction pass.
    pub fn with_diameter_target(mut self, target: DiameterTarget) -> Self {
        self.diameter_target = Some(target);
        self
    }

    /// Uses the conditioned-sampling CUT rule.
    pub fn with_conditioned_sampling(mut self) -> Self {
        self.cut = CutStrategyKind::ConditionedSampling;
        self
    }

    /// Overrides Algorithm 2's radii.
    pub fn with_radii(mut self, cut_radius: usize, locality_radius: usize) -> Self {
        self.radii = Some((cut_radius, locality_radius));
        self
    }
}

/// Result of the Theorem 4.6 pipeline.
#[derive(Clone, Debug)]
pub struct FdResult {
    /// The complete forest decomposition.
    pub decomposition: ForestDecomposition,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// The arboricity bound the run was based on.
    pub arboricity: usize,
    /// Maximum tree diameter of the decomposition.
    pub max_diameter: usize,
    /// Number of edges that went through the leftover recoloring.
    pub leftover_edges: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// Theorem 4.6: `(1+O(ε))α`-forest decomposition over any frozen topology
/// view — an owned CSR, an mmap-backed graph, or a zero-copy `CsrRef` shard
/// (the `Decomposer` facade freezes once per request; the thaw-free sharded
/// pipeline feeds shard views straight in).
///
/// # Errors
///
/// Returns an error for invalid parameters or if an internal phase fails.
pub(crate) fn forest_decomposition<C: GraphView, R: Rng + ?Sized>(
    csr: &C,
    options: &FdOptions,
    rng: &mut R,
) -> Result<FdResult, FdError> {
    forest_decomposition_impl(csr, options, rng, true)
}

/// [`forest_decomposition`] without the final diameter measurement
/// (`max_diameter` reported as 0) — the shard fast path: `run_sharded`
/// measures the diameter once globally after stitching, so per-shard
/// measurement would only duplicate a whole-graph BFS pass.
pub(crate) fn forest_decomposition_shard<C: GraphView, R: Rng + ?Sized>(
    csr: &C,
    options: &FdOptions,
    rng: &mut R,
) -> Result<FdResult, FdError> {
    forest_decomposition_impl(csr, options, rng, false)
}

fn forest_decomposition_impl<C: GraphView, R: Rng + ?Sized>(
    csr: &C,
    options: &FdOptions,
    rng: &mut R,
    measure_diameter: bool,
) -> Result<FdResult, FdError> {
    check_epsilon(options.epsilon)?;
    if csr.num_edges() == 0 {
        return Ok(FdResult {
            decomposition: ForestDecomposition::from_colors(Vec::new()),
            num_colors: 0,
            arboricity: 0,
            max_diameter: 0,
            leftover_edges: 0,
            ledger: RoundLedger::new(),
        });
    }
    let alpha = options
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(csr))
        .max(1);
    let primary_colors = ((1.0 + options.epsilon) * alpha as f64).ceil() as usize;
    let lists = ListAssignment::uniform(csr.num_edges(), primary_colors);
    let mut config = Algorithm2Config::new(options.epsilon, alpha);
    config.cut = options.cut;
    if let Some((r, rp)) = options.radii {
        config = config.with_radii(r, rp);
    }
    let out = algorithm2_frozen(csr, &lists, &config, rng)?;
    let mut ledger = out.ledger.clone();
    let mut coloring = out.coloring.clone();
    // Recolor the leftover as star forests with fresh colors (Theorem 2.1(3)).
    if !out.leftover.is_empty() {
        let leftover_mask = crate::cut::dense_mask(csr.num_edges(), out.leftover.iter().copied());
        let (sub, back) = forest_graph::edge_subgraph(csr, |e| leftover_mask[e.index()]);
        let pseudo = forest_graph::orientation::pseudoarboricity(&sub).max(1);
        let hp = h_partition(&sub, 0.5, pseudo, &mut ledger)?;
        let sub_orientation = acyclic_orientation(&sub, &hp);
        let sfd = star_forest_decomposition(&sub, &sub_orientation, &mut ledger);
        for (i, &orig) in back.iter().enumerate() {
            coloring.set(
                orig,
                Color::new(primary_colors + sfd.color(EdgeId::new(i)).index()),
            );
        }
    }
    // Optional diameter reduction (Corollary 2.5).
    if let Some(target) = options.diameter_target {
        let reduced = reduce_diameter(csr, &coloring, options.epsilon, target, rng, &mut ledger)?;
        coloring = reduced.coloring;
    }
    let decomposition = coloring.into_complete()?;
    validate_partial_forest_decomposition(csr, &decomposition.to_partial())?;
    let num_colors = decomposition.num_colors_used();
    let max_diameter = if measure_diameter {
        max_forest_diameter(csr, &decomposition.to_partial())
    } else {
        0
    };
    Ok(FdResult {
        decomposition,
        num_colors,
        arboricity: alpha,
        max_diameter,
        leftover_edges: out.leftover.len(),
        ledger,
    })
}

/// Result of the Theorem 4.10 pipeline.
#[derive(Clone, Debug)]
pub struct LfdResult {
    /// The complete list-forest coloring (every color comes from the edge's
    /// palette).
    pub coloring: PartialEdgeColoring,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// The arboricity bound the run was based on.
    pub arboricity: usize,
    /// Maximum tree diameter of the decomposition.
    pub max_diameter: usize,
    /// Number of leftover edges recolored from the back-up palettes.
    pub leftover_edges: usize,
    /// How many times the vertex-color-splitting had to be redrawn before the
    /// main side was large enough.
    pub splitting_retries: usize,
    /// Round accounting.
    pub ledger: RoundLedger,
}

/// Theorem 4.10: `(1+O(ε))α`-list-forest decomposition of a multigraph whose
/// palettes all have at least `⌈(1+ε)α⌉` colors.
///
/// # Errors
///
/// Returns an error if the palettes are too small, the splitting repeatedly
/// fails to leave a large enough main side, or an internal phase fails.
pub(crate) fn list_forest_decomposition<C: GraphView, R: Rng + ?Sized>(
    g: &MultiGraph,
    csr: &C,
    lists: &ListAssignment,
    options: &FdOptions,
    rng: &mut R,
) -> Result<LfdResult, FdError> {
    check_epsilon(options.epsilon)?;
    if g.num_edges() == 0 {
        return Ok(LfdResult {
            coloring: PartialEdgeColoring::new_uncolored(0),
            num_colors: 0,
            arboricity: 0,
            max_diameter: 0,
            leftover_edges: 0,
            splitting_retries: 0,
            ledger: RoundLedger::new(),
        });
    }
    let alpha = options
        .alpha
        .unwrap_or_else(|| forest_graph::matroid::arboricity(g))
        .max(1);
    let needed = ((1.0 + options.epsilon) * alpha as f64).ceil() as usize;
    for e in g.edge_ids() {
        if lists.palette(e).len() < needed {
            return Err(FdError::PaletteTooSmall {
                edge: e,
                needed,
                available: lists.palette(e).len(),
            });
        }
    }
    let mut ledger = RoundLedger::new();
    // Algorithm 2 on the main side needs palettes of size (1 + eps/2) alpha.
    let main_needed = ((1.0 + options.epsilon / 2.0) * alpha as f64).ceil() as usize;
    // Draw the vertex-color-splitting; retry a few times if the main side
    // comes out too small (the paper's w.h.p. guarantee needs alpha >= log n,
    // which bench-scale instances may not satisfy).
    let mut splitting_retries = 0usize;
    let mut chosen = None;
    for attempt in 0..8 {
        let splitting = split_colors_clustered(g, lists, options.epsilon, rng, &mut ledger)?;
        let (k0, _k1) = splitting.sizes(g, lists);
        if k0 >= main_needed {
            splitting_retries = attempt;
            chosen = Some(splitting);
            break;
        }
        splitting_retries = attempt + 1;
    }
    // Last resort (the paper's guarantee needs alpha >= Omega(log n)): run
    // with every color on the main side; the leftover is then completed by
    // direct augmentation on the original palettes instead of a back-up side.
    let splitting = chosen.unwrap_or_else(|| crate::color_splitting::VertexColorSplitting {
        side1: vec![HashSet::new(); g.num_vertices()],
    });
    let q0 = splitting.induced_lists(g, lists, 0);
    let q1 = splitting.induced_lists(g, lists, 1);

    let mut config = Algorithm2Config::new(options.epsilon / 2.0, alpha);
    config.cut = options.cut;
    if let Some((r, rp)) = options.radii {
        config = config.with_radii(r, rp);
    }
    let out = algorithm2_frozen(csr, &q0, &config, rng)?;
    ledger.absorb("algorithm2", out.ledger.clone());
    let phi0 = out.coloring.clone();

    // Recolor the leftover. Preferred route (Theorem 4.10): use the back-up
    // palettes Q1 and merge by Proposition 4.8. That requires every leftover
    // edge to still have back-up colors; when it does not (small bench-scale
    // palettes), fall back to completing phi0 by direct augmentation on the
    // original palettes, which is always valid but forgoes the reserved
    // back-up colors.
    let leftover_set: HashSet<EdgeId> = out.leftover.iter().copied().collect();
    let coloring = if leftover_set.is_empty() {
        phi0
    } else {
        let (sub, back) = g.edge_subgraph(|e| leftover_set.contains(&e));
        let backup_ok = back.iter().all(|&orig| !q1.palette(orig).is_empty());
        let mut via_backup = None;
        if backup_ok {
            let sub_lists = ListAssignment::from_palettes(
                back.iter().map(|&orig| q1.palette(orig).to_vec()).collect(),
            );
            let pseudo = forest_graph::orientation::pseudoarboricity(&sub).max(1);
            // Try the Theorem 2.3 LSFD first, then augmentation on the
            // leftover subgraph, both against the back-up palettes.
            let sub_coloring = match list_star_forest_decomposition_degeneracy(
                &sub,
                &sub_lists,
                options.epsilon,
                pseudo,
                &mut ledger,
            ) {
                Ok(outcome) => Some(outcome.coloring),
                Err(_) => {
                    let mut c = PartialEdgeColoring::new_uncolored(sub.num_edges());
                    complete_by_augmentation(&sub, &sub_lists, &mut c, 16 * g.num_vertices())
                        .ok()
                        .map(|_| c)
                }
            };
            if let Some(sub_coloring) = sub_coloring {
                if sub_coloring.is_complete() {
                    let mut phi1 = PartialEdgeColoring::new_uncolored(g.num_edges());
                    for (i, &orig) in back.iter().enumerate() {
                        if let Some(c) = sub_coloring.color(EdgeId::new(i)) {
                            phi1.set(orig, c);
                        }
                    }
                    // Proposition 4.8: the merge of the two sides is a valid
                    // list-forest decomposition.
                    via_backup = Some(merge_disjoint_colorings(&phi0, &phi1, 0));
                }
            }
        }
        match via_backup {
            Some(merged) => merged,
            None => {
                // Fallback: finish phi0 directly with the original palettes.
                let mut completed = phi0;
                complete_by_augmentation(g, lists, &mut completed, 16 * g.num_vertices())?;
                completed
            }
        }
    };
    validate_partial_forest_decomposition(csr, &coloring)?;
    validate_list_coloring(csr, &coloring, lists)?;
    let num_colors = coloring.num_colors_used();
    let max_diameter = max_forest_diameter(csr, &coloring);
    Ok(LfdResult {
        coloring,
        num_colors,
        arboricity: alpha,
        max_diameter,
        leftover_edges: leftover_set.len(),
        splitting_retries,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::validate_forest_decomposition;
    use forest_graph::{generators, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem_4_6_on_planted_multigraph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(60, 4, &mut rng);
        let options = FdOptions::new(0.5);
        let csr = CsrGraph::from_multigraph(&g);
        let result = forest_decomposition(&csr, &options, &mut rng).unwrap();
        validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors))
            .expect("valid FD");
        // (1 + O(eps)) alpha colors: with eps = 0.5 and the leftover budget,
        // we allow up to 2 alpha + 2.
        assert!(
            result.num_colors <= 2 * result.arboricity + 2,
            "too many colors: {} vs alpha {}",
            result.num_colors,
            result.arboricity
        );
        assert!(result.num_colors >= result.arboricity);
        assert!(result.ledger.total_rounds() > 0);
    }

    #[test]
    fn theorem_4_6_with_diameter_reduction() {
        let g = generators::fat_path(120, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let options = FdOptions::new(0.4)
            .with_alpha(3)
            .with_diameter_target(DiameterTarget::OneOverEpsilon);
        let csr = CsrGraph::from_multigraph(&g);
        let result = forest_decomposition(&csr, &options, &mut rng).unwrap();
        validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors))
            .expect("valid FD");
        // Diameter O(1/eps): z = ceil(2/0.4) = 5, so at most 2z = 10.
        assert!(
            result.max_diameter <= 10,
            "diameter too large: {}",
            result.max_diameter
        );
        // Proposition C.1: it also cannot be much smaller than 1/eps unless
        // far more colors are used.
        assert!(result.max_diameter >= 1);
    }

    #[test]
    fn theorem_4_6_exercises_cut_with_small_radii() {
        let g = generators::fat_path(100, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let options = FdOptions::new(0.5).with_alpha(2).with_radii(8, 4);
        let csr = CsrGraph::from_multigraph(&g);
        let result = forest_decomposition(&csr, &options, &mut rng).unwrap();
        validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors))
            .expect("valid FD");
        assert!(result.num_colors >= 2);
    }

    #[test]
    fn theorem_4_10_with_uniform_lists() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::planted_forest_union(50, 3, &mut rng);
        let alpha = forest_graph::matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), 2 * (alpha + 1));
        let options = FdOptions::new(0.5).with_alpha(alpha);
        let csr = CsrGraph::from_multigraph(&g);
        let result = list_forest_decomposition(&g, &csr, &lists, &options, &mut rng).unwrap();
        assert!(result.coloring.is_complete());
        validate_partial_forest_decomposition(&g, &result.coloring).expect("valid LFD");
        validate_list_coloring(&g, &result.coloring, &lists).expect("palettes respected");
    }

    #[test]
    fn theorem_4_10_with_random_lists() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::planted_forest_union(40, 2, &mut rng);
        let alpha = forest_graph::matroid::arboricity(&g);
        let palette_size = 3 * (alpha + 1);
        let lists = ListAssignment::random(g.num_edges(), 2 * palette_size, palette_size, &mut rng);
        let options = FdOptions::new(0.5).with_alpha(alpha);
        let csr = CsrGraph::from_multigraph(&g);
        let result = list_forest_decomposition(&g, &csr, &lists, &options, &mut rng).unwrap();
        validate_partial_forest_decomposition(&g, &result.coloring).expect("valid LFD");
        validate_list_coloring(&g, &result.coloring, &lists).expect("palettes respected");
    }

    #[test]
    fn theorem_4_10_rejects_small_palettes() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::planted_forest_union(20, 3, &mut rng);
        let lists = ListAssignment::uniform(g.num_edges(), 1);
        let options = FdOptions::new(0.5).with_alpha(3);
        let csr = CsrGraph::from_multigraph(&g);
        assert!(matches!(
            list_forest_decomposition(&g, &csr, &lists, &options, &mut rng),
            Err(FdError::PaletteTooSmall { .. })
        ));
    }

    #[test]
    fn empty_graph_pipelines() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = MultiGraph::new(3);
        let csr = CsrGraph::from_multigraph(&g);
        let options = FdOptions::new(0.5);
        let fd = forest_decomposition(&csr, &options, &mut rng).unwrap();
        assert_eq!(fd.num_colors, 0);
        let lists = ListAssignment::uniform(0, 1);
        let lfd = list_forest_decomposition(&g, &csr, &lists, &options, &mut rng).unwrap();
        assert_eq!(lfd.num_colors, 0);
    }
}
