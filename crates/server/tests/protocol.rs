//! Wire-protocol contract tests: `decode(encode(x)) == x` for every
//! request and response shape, and decoding is *total* — arbitrary bytes,
//! truncations and single-byte corruptions of valid frames all come back
//! as a typed [`ErrorCode::Malformed`] (or a different well-formed
//! message), never a panic.

use forest_decomp::api::EdgeUpdate;
use forest_decomp::Engine;
use forest_graph::EdgeId;
use forest_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, GraphSource, Request,
    Response, WireError, WireStats, MAGIC, VERSION,
};
use forest_serve::ErrorCode;
use proptest::prelude::*;

const ENGINES: [Engine; 4] = [
    Engine::HarrisSuVu,
    Engine::BarenboimElkin,
    Engine::Folklore2Alpha,
    Engine::ExactMatroid,
];

const NAMES: [&str; 5] = ["", "t", "tenant-α", "graphs/web", "a b\tc"];

const CODES: [ErrorCode; 10] = [
    ErrorCode::Malformed,
    ErrorCode::UnknownGraph,
    ErrorCode::AlreadyRegistered,
    ErrorCode::UnknownEdge,
    ErrorCode::OutOfRange,
    ErrorCode::Unsupported,
    ErrorCode::InvalidRequest,
    ErrorCode::Io,
    ErrorCode::Graph,
    ErrorCode::Internal,
];

/// Every request variant, driven by one flat tuple of draws.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0..10usize, 0..NAMES.len(), 0..NAMES.len(), 0..ENGINES.len()),
        (1..99u64, 0..1_000_000u64, 0..3usize),
        proptest::collection::vec((0..2usize, 0..64u64, 0..64u64), 8),
        (0..5usize, 0..64u64, 0..64u64),
    )
        .prop_map(
            |((variant, t, g, eng), (eps, seed, src), items, (len, a, b))| {
                let tenant = NAMES[t].to_string();
                let graph = NAMES[g].to_string();
                match variant {
                    0 => Request::RegisterGraph {
                        tenant,
                        graph,
                        engine: ENGINES[eng],
                        epsilon: eps as f64 / 100.0,
                        seed,
                        source: match src {
                            0 => GraphSource::Empty { num_vertices: a },
                            1 => GraphSource::Edges {
                                num_vertices: a,
                                edges: items.iter().take(len).map(|&(_, u, v)| (u, v)).collect(),
                            },
                            _ => GraphSource::MmapPath {
                                path: format!("/data/{b}.fgcsr"),
                            },
                        },
                    },
                    1 => Request::ApplyUpdates {
                        tenant,
                        graph,
                        updates: items
                            .iter()
                            .map(|&(tag, u, v)| {
                                if tag == 0 {
                                    EdgeUpdate::insert(u as usize, v as usize)
                                } else {
                                    EdgeUpdate::delete(EdgeId::new(u as usize))
                                }
                            })
                            .collect(),
                    },
                    2 => Request::ColorOfEdge {
                        tenant,
                        graph,
                        edge: a,
                    },
                    3 => Request::ForestOfVertex {
                        tenant,
                        graph,
                        color: a,
                        vertex: b,
                    },
                    4 => Request::OrientationOut {
                        tenant,
                        graph,
                        vertex: b,
                    },
                    5 => Request::ArboricityWatermark { tenant, graph },
                    6 => Request::SnapshotBytes { tenant, graph },
                    7 => Request::Stats { tenant, graph },
                    8 => Request::Metrics { tenant, graph },
                    _ => Request::Shutdown,
                }
            },
        )
}

/// Every response variant, including well-formed error frames.
fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0..11usize, 0..50u64, 0..100u64, 0..100u64),
        proptest::collection::vec(0..1_000u64, 6),
        (0..CODES.len(), 0..NAMES.len(), 0..7usize),
    )
        .prop_map(
            |((variant, epoch, x, y), vals, (code, msg, len))| match variant {
                0 => Response::Registered {
                    epoch,
                    num_vertices: x,
                    live_edges: y,
                    color_budget: vals[0],
                },
                1 => Response::Applied {
                    epoch,
                    applied: x,
                    inserted_edges: vals[..len].to_vec(),
                    recolored_edges: y,
                    color_budget: vals[0],
                    live_edges: vals[1],
                },
                2 => Response::EdgeColor {
                    epoch,
                    color: (x % 2 == 0).then_some(y),
                },
                3 => Response::VertexForest { epoch, root: x },
                4 => Response::OutEdges {
                    epoch,
                    edges: vals[..len].to_vec(),
                },
                5 => Response::Watermark {
                    epoch,
                    lower_bound: x,
                    color_budget: y,
                    live_edges: vals[0],
                    num_vertices: vals[1],
                },
                6 => Response::Snapshot {
                    epoch,
                    bytes: vals[..len].iter().map(|&v| v as u8).collect(),
                },
                7 => Response::StatsReport {
                    epoch,
                    stats: WireStats {
                        updates: vals[0],
                        fast_inserts: vals[1],
                        exchanges: vals[2],
                        exchange_recolorings: vals[3],
                        budget_raises: vals[4],
                        fast_deletes: vals[5],
                        compactions: x,
                        compaction_recolorings: y,
                        live_edges: epoch,
                        color_budget: x,
                    },
                },
                8 => Response::ShuttingDown,
                9 => Response::MetricsReport {
                    epoch,
                    entries: vals[..len]
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (format!("{}_total_{i}", NAMES[msg]), v))
                        .collect(),
                },
                _ => Response::Error(WireError::new(CODES[code], NAMES[msg])),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `decode_request ∘ encode_request` is the identity.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let buf = encode_request(&req);
        let back = decode_request(&buf);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        prop_assert_eq!(back.unwrap(), req);
    }

    /// `decode_response ∘ encode_response` is the identity — including for
    /// error frames, which decode to `Ok(Response::Error(..))`.
    #[test]
    fn response_round_trips(resp in arb_response()) {
        let buf = encode_response(&resp);
        let back = decode_response(&buf);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        prop_assert_eq!(back.unwrap(), resp);
    }

    /// Arbitrary byte soup never panics either decoder; failures are the
    /// typed malformed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in (0..64usize)
        .prop_flat_map(|len| proptest::collection::vec(0..256usize, len))
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()))
    {
        if let Err(err) = decode_request(&bytes) {
            prop_assert_eq!(err.code, ErrorCode::Malformed);
        }
        if let Err(err) = decode_response(&bytes) {
            prop_assert_eq!(err.code, ErrorCode::Malformed);
        }
    }

    /// Garbage *behind a valid prologue* (the adversarial half: magic and
    /// version pass, the body is noise) never panics and never succeeds
    /// silently with trailing bytes.
    #[test]
    fn prologued_garbage_never_panics(bytes in (0..48usize)
        .prop_flat_map(|len| proptest::collection::vec(0..256usize, len))
        .prop_map(|v| {
            let mut buf = Vec::with_capacity(v.len() + 6);
            buf.extend_from_slice(&MAGIC.to_le_bytes());
            buf.extend_from_slice(&VERSION.to_le_bytes());
            buf.extend(v.into_iter().map(|b| b as u8));
            buf
        }))
    {
        if let Err(err) = decode_request(&bytes) {
            prop_assert_eq!(err.code, ErrorCode::Malformed);
        }
        if let Err(err) = decode_response(&bytes) {
            prop_assert_eq!(err.code, ErrorCode::Malformed);
        }
    }

    /// Every strict prefix of a valid frame is rejected as malformed (no
    /// partial parse ever passes), and every single-byte corruption either
    /// decodes to *some* well-formed message or fails typed — never panics.
    #[test]
    fn truncations_and_corruptions_stay_typed(req in arb_request()) {
        let buf = encode_request(&req);
        for len in 0..buf.len() {
            let err = decode_request(&buf[..len]).expect_err("prefix accepted");
            prop_assert_eq!(err.code, ErrorCode::Malformed);
        }
        for pos in 0..buf.len() {
            let mut bent = buf.clone();
            bent[pos] ^= 0x41;
            if let Err(err) = decode_request(&bent) {
                prop_assert_eq!(err.code, ErrorCode::Malformed);
            }
        }
    }
}

/// A hostile element count (4 billion updates in a 40-byte frame) is
/// rejected before any allocation happens.
#[test]
fn oversized_counts_are_rejected_without_allocating() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(2); // ApplyUpdates
    buf.extend_from_slice(&0u32.to_le_bytes()); // tenant ""
    buf.extend_from_slice(&0u32.to_le_bytes()); // graph ""
    buf.extend_from_slice(&u32::MAX.to_le_bytes()); // update count
    let err = decode_request(&buf).expect_err("hostile count accepted");
    assert_eq!(err.code, ErrorCode::Malformed);
}

/// Same hostile-count discipline for the `Metrics` response decoder: a
/// claimed 4-billion-entry report in a 21-byte frame fails typed before
/// the entries `Vec` is ever sized.
#[test]
fn oversized_metrics_report_is_rejected_without_allocating() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(10); // Metrics
    buf.extend_from_slice(&0u64.to_le_bytes()); // epoch
    buf.extend_from_slice(&u32::MAX.to_le_bytes()); // entry count
    let err = decode_response(&buf).expect_err("hostile count accepted");
    assert_eq!(err.code, ErrorCode::Malformed);
}
