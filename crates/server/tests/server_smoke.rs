//! End-to-end smoke test over a real socket: spawn the `forest-serve`
//! binary on an OS-assigned port, register a tenant graph, stream 1 000
//! edge updates through it in batches, and check every query answer —
//! including the acceptance criterion that `SnapshotBytes` served over
//! the wire is byte-identical to a local cold [`Decomposer::run`] on the
//! same surviving edges. Ends with a clean `Shutdown` and asserts the
//! process exits successfully (the CI smoke job runs exactly this test).

use forest_decomp::api::{Decomposer, DecompositionRequest, EdgeUpdate, Engine, ProblemKind};
use forest_graph::{EdgeId, MultiGraph, VertexId};
use forest_serve::protocol::{decode_response, read_frame, write_frame};
use forest_serve::{Client, ClientError, ErrorCode, GraphSource, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};

const N: usize = 96;
const SEED: u64 = 23;
const EPSILON: f64 = 0.5;

fn request() -> DecompositionRequest {
    DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_epsilon(EPSILON)
        .with_seed(SEED)
}

/// Pulls one named counter out of a `Metrics` reply.
fn metric(entries: &[(String, u64)], name: &str) -> u64 {
    entries
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing metric {name}"))
        .1
}

/// Spawns the server binary on port 0 and reads the bound address back
/// from its announcement line.
fn spawn_server() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_forest-serve"))
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn forest-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("forest-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn register_churn_query_snapshot_shutdown() {
    let (mut child, addr) = spawn_server();
    let mut client = Client::connect(addr).expect("connect");

    // Register from an inline edge list; ids are assigned 0..m0 in order.
    let mut rng = StdRng::seed_from_u64(4242);
    let initial: Vec<(u64, u64)> = (0..64)
        .filter_map(|_| {
            let u = rng.gen_range(0..N as u64);
            let v = rng.gen_range(0..N as u64);
            (u != v).then_some((u, v))
        })
        .collect();
    let (epoch, nv, live, _budget) = client
        .register(
            "acme",
            "web",
            Engine::ExactMatroid,
            EPSILON,
            SEED,
            GraphSource::Edges {
                num_vertices: N as u64,
                edges: initial.clone(),
            },
        )
        .expect("register");
    assert_eq!(epoch, 0);
    assert_eq!(nv, N as u64);
    assert_eq!(live, initial.len() as u64);

    // Duplicate registration and unknown graphs fail typed.
    let dup = client.register(
        "acme",
        "web",
        Engine::ExactMatroid,
        EPSILON,
        SEED,
        GraphSource::Empty {
            num_vertices: N as u64,
        },
    );
    assert!(matches!(
        dup,
        Err(ClientError::Server(err)) if err.code == ErrorCode::AlreadyRegistered
    ));
    assert!(matches!(
        client.watermark("acme", "nope"),
        Err(ClientError::Server(err)) if err.code == ErrorCode::UnknownGraph
    ));

    // Mirror of the server's live edge set: id -> endpoints.
    let mut mirror: BTreeMap<u64, (u64, u64)> = initial
        .iter()
        .enumerate()
        .map(|(i, &e)| (i as u64, e))
        .collect();
    let (_, stats0) = client.stats("acme", "web").expect("stats");
    let (metrics_epoch, metrics0) = client.metrics("acme", "web").expect("metrics");
    assert_eq!(metrics_epoch, 0, "no batch published yet");
    {
        let names: Vec<&str> = metrics0.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "metric entries arrive in ascending order");
    }
    let mut last_requests = metric(&metrics0, "requests_total");

    // 1 000 updates in 4 batches of 250: each batch deletes from the
    // edges live before it, then inserts fresh endpoints (the protocol's
    // deletes-first order makes that unambiguous).
    let mut applied_total = 0u64;
    for batch_no in 0..4 {
        let mut updates = Vec::with_capacity(250);
        let mut deleted = Vec::new();
        let mut inserted = Vec::new();
        let live_ids: Vec<u64> = mirror.keys().copied().collect();
        for &id in live_ids.iter() {
            if updates.len() < 80 && rng.gen_bool(0.4) {
                updates.push(EdgeUpdate::delete(EdgeId::new(id as usize)));
                deleted.push(id);
            }
        }
        while updates.len() < 250 {
            let u = rng.gen_range(0..N);
            let v = rng.gen_range(0..N);
            if u != v {
                updates.push(EdgeUpdate::insert(u, v));
                inserted.push((u as u64, v as u64));
            }
        }
        let report = client
            .apply_updates("acme", "web", updates)
            .expect("apply batch");
        applied_total += report.applied;
        assert_eq!(report.epoch, batch_no + 1, "one publish per batch");
        assert_eq!(report.applied, 250);
        assert_eq!(
            report.inserted_edges.len(),
            inserted.len(),
            "one id per insert, in order"
        );
        for id in deleted {
            mirror.remove(&id);
        }
        for (&id, &endpoints) in report.inserted_edges.iter().zip(inserted.iter()) {
            mirror.insert(id, endpoints);
        }
        assert_eq!(report.live_edges, mirror.len() as u64);

        // The tenant's service counters track the batch stream and are
        // monotone between polls.
        let (metrics_epoch, metrics) = client.metrics("acme", "web").expect("metrics poll");
        assert_eq!(metrics_epoch, batch_no + 1);
        assert_eq!(metric(&metrics, "update_batches_total"), batch_no + 1);
        assert_eq!(metric(&metrics, "publishes_total"), batch_no + 1);
        assert_eq!(
            metric(&metrics, "updates_applied_total"),
            (batch_no + 1) * 250
        );
        let requests = metric(&metrics, "requests_total");
        assert!(
            requests > last_requests,
            "requests_total went {last_requests} -> {requests}"
        );
        last_requests = requests;
    }
    assert_eq!(applied_total, 1_000);

    // Queries answer from the published epoch.
    let wm = client.watermark("acme", "web").expect("watermark");
    assert_eq!(wm.epoch, 4);
    assert_eq!(wm.live_edges, mirror.len() as u64);
    assert_eq!(wm.num_vertices, N as u64);
    let nw_floor = mirror.len() as u64 / (N as u64 - 1)
        + u64::from(!(mirror.len() as u64).is_multiple_of(N as u64 - 1));
    assert!(wm.lower_bound >= nw_floor, "watermark below Nash-Williams");
    assert!(wm.color_budget >= wm.lower_bound);

    let (&live_id, &(u, v)) = mirror.iter().next().expect("a live edge");
    let (_, color) = client
        .color_of_edge("acme", "web", live_id)
        .expect("color query");
    let color = color.expect("live edge is colored");
    assert!(color < wm.color_budget);
    // Both endpoints of a colored edge sit in the same tree of that forest.
    let (_, root_u) = client
        .forest_of_vertex("acme", "web", color, u)
        .expect("root of u");
    let (_, root_v) = client
        .forest_of_vertex("acme", "web", color, v)
        .expect("root of v");
    assert_eq!(root_u, root_v, "edge endpoints in different trees");

    // A deleted id answers None (a normal outcome, not an error)…
    let gone = (0..u64::MAX).find(|id| !mirror.contains_key(id)).unwrap();
    let (_, color) = client
        .color_of_edge("acme", "web", gone)
        .expect("dead-edge query");
    assert_eq!(color, None);
    // …while out-of-range vertices answer typed errors.
    assert!(matches!(
        client.forest_of_vertex("acme", "web", 0, N as u64),
        Err(ClientError::Server(err)) if err.code == ErrorCode::OutOfRange
    ));

    // The orientation honors the budget at every vertex.
    for vertex in 0..N as u64 {
        let (_, out) = client
            .orientation_out("acme", "web", vertex)
            .expect("orientation");
        assert!(out.len() as u64 <= wm.color_budget);
    }

    // Counters moved by exactly the stream we sent.
    let (_, stats) = client.stats("acme", "web").expect("stats");
    assert_eq!(stats.updates - stats0.updates, 1_000);
    assert_eq!(stats.live_edges, mirror.len() as u64);

    // Acceptance criterion: the served snapshot bytes are byte-identical
    // to a cold local `Decomposer::run` on the same surviving edges.
    let mut expected = MultiGraph::new(N);
    for &(u, v) in mirror.values() {
        expected
            .add_edge(VertexId::new(u as usize), VertexId::new(v as usize))
            .expect("mirror edge");
    }
    let cold = Decomposer::new(request()).run(&expected).expect("cold run");
    let (epoch, wire_bytes) = client.snapshot_bytes("acme", "web").expect("snapshot");
    assert_eq!(epoch, 4);
    assert_eq!(
        wire_bytes,
        cold.canonical_bytes(),
        "wire snapshot differs from the cold run"
    );

    // A second registered graph is isolated from the first.
    client
        .register(
            "acme",
            "staging",
            Engine::ExactMatroid,
            EPSILON,
            SEED,
            GraphSource::Empty { num_vertices: 8 },
        )
        .expect("second graph");
    let wm2 = client.watermark("acme", "staging").expect("watermark 2");
    assert_eq!(wm2.live_edges, 0);
    assert_eq!(wm.live_edges, mirror.len() as u64, "tenant 1 untouched");

    // A framing-level attack gets a typed Malformed error, then the
    // server closes that connection — without disturbing others.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    write_frame(&mut raw, b"not a frame").expect("send garbage");
    let payload = read_frame(&mut raw).expect("typed error frame");
    match decode_response(&payload) {
        Ok(Response::Error(err)) => assert_eq!(err.code, ErrorCode::Malformed),
        other => panic!("wanted a malformed error frame, got {other:?}"),
    }
    assert!(
        read_frame(&mut raw).is_err(),
        "connection should close after a malformed frame"
    );
    let wm_again = client.watermark("acme", "web").expect("still serving");
    assert_eq!(wm_again, wm);

    // Clean shutdown: acknowledged on the wire, process exits 0 — even
    // with an idle connection still open (`lingerer` below, and `client`
    // itself after the ack). The drain half-closes parked connections
    // instead of waiting for peers to hang up.
    let lingerer = Client::connect(addr).expect("idle connection");
    client.shutdown().expect("shutdown ack");
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited {status:?}");
    drop(lingerer);
}
