//! Decomposition-as-a-service: a resident, multi-tenant TCP server over
//! snapshot-isolated live forest colorings.
//!
//! Tenants register graphs once (inline edges, an on-disk CSR path the
//! server mmaps, or empty + a live update stream) and many concurrent
//! readers query the maintained `α(+ε)` coloring — per-edge colors,
//! per-color forest roots, the bounded-out-degree orientation, the live
//! Nash-Williams arboricity watermark, and byte-reproducible snapshot
//! reports — while one writer per graph streams edge updates through the
//! [`DynamicDecomposer`](forest_decomp::api::DynamicDecomposer).
//!
//! The crate splits along the three layers of the tentpole:
//!
//! * [`protocol`] — the little-endian, length-prefixed binary wire
//!   format: request/response frames, typed error frames mirroring
//!   [`FdError`](forest_decomp::FdError), and a total (never-panicking)
//!   decoder.
//! * [`state`] — the tenant registry and request handler over
//!   [`VersionedDecomposer`](forest_decomp::api::VersionedDecomposer):
//!   per-graph single-writer/multi-reader snapshot isolation, with the
//!   query path lock-free against the writer.
//! * [`server`] / [`client`] — `std::net` front end (thread per
//!   connection, clean shutdown) and the small blocking client the
//!   tests, smoke job and benchmarks reuse.
//!
//! Run the binary with `cargo run -p forest-serve -- 127.0.0.1:7433`, or
//! embed [`Server`] directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{Applied, Client, ClientError, Watermark};
pub use protocol::{ErrorCode, GraphSource, Opcode, Request, Response, WireError, WireStats};
pub use server::Server;
pub use state::{GraphEntry, ServerState};
