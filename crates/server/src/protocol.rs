//! The wire protocol: little-endian, length-prefixed binary frames in the
//! style of the versioned on-disk CSR format.
//!
//! Every message travels as one frame: a `u32` payload length (LE,
//! capped at [`MAX_FRAME_LEN`]) followed by the payload. Payloads open
//! with the magic `"FSRV"` ([`MAGIC`]) and a `u16` protocol version
//! ([`VERSION`]); requests follow with an opcode byte and the request
//! body, responses with a status byte (`0` = ok, which echoes the
//! request's opcode before the body; `1` = error, carrying a typed
//! [`WireError`]). Integers are unsigned LE; strings and byte blobs are
//! `u32`-length-prefixed; `ε` travels as `f64::to_bits`.
//!
//! Decoding is **total**: any byte sequence decodes to either a message
//! or a typed [`WireError`] — never a panic, never an allocation sized by
//! unvalidated input (collection counts are checked against the bytes
//! actually remaining before reserving). The round-trip identity
//! (`decode(encode(x)) == x`) and the never-panics property are
//! proptested in `tests/protocol.rs`.

use forest_decomp::api::EdgeUpdate;
use forest_decomp::{Engine, FdError};
use forest_graph::EdgeId;
use std::fmt;
use std::io::{self, Read, Write};

/// `"FSRV"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"FSRV");
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Hard cap on one frame's payload (64 MiB): bounds what a malformed or
/// hostile length prefix can make the server allocate.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Request opcodes (also echoed in ok responses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Register a tenant graph.
    RegisterGraph = 1,
    /// Apply a batch of edge updates and publish the next epoch.
    ApplyUpdates = 2,
    /// The forest color of one edge.
    ColorOfEdge = 3,
    /// The root of a vertex's tree in one color's forest.
    ForestOfVertex = 4,
    /// The out-edges the orientation assigns a vertex.
    OrientationOut = 5,
    /// The live arboricity watermark.
    ArboricityWatermark = 6,
    /// The epoch's reproducible cold-run report bytes.
    SnapshotBytes = 7,
    /// Cumulative stream counters.
    Stats = 8,
    /// Stop the server (drains, then exits the accept loop).
    Shutdown = 9,
    /// Per-tenant observability counters (name/value pairs).
    Metrics = 10,
}

impl Opcode {
    fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            1 => Opcode::RegisterGraph,
            2 => Opcode::ApplyUpdates,
            3 => Opcode::ColorOfEdge,
            4 => Opcode::ForestOfVertex,
            5 => Opcode::OrientationOut,
            6 => Opcode::ArboricityWatermark,
            7 => Opcode::SnapshotBytes,
            8 => Opcode::Stats,
            9 => Opcode::Shutdown,
            10 => Opcode::Metrics,
            _ => return None,
        })
    }

    /// The wire byte of this opcode.
    ///
    /// Enum-to-integer is the one place `as` is unavoidable; the
    /// discriminants are declared `1..=10` above, so the cast is lossless.
    fn wire(self) -> u8 {
        // forest-lint: allow(FL004) audited: Opcode discriminants are declared in u8 range
        self as u8
    }
}

/// Where a registered graph's initial edges come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// No initial edges; the graph is grown by `ApplyUpdates`.
    Empty {
        /// Vertex count.
        num_vertices: u64,
    },
    /// An inline edge list.
    Edges {
        /// Vertex count.
        num_vertices: u64,
        /// Endpoint pairs, applied in order (their ids are `0..len`).
        edges: Vec<(u64, u64)>,
    },
    /// A versioned on-disk CSR file the *server* mmaps.
    MmapPath {
        /// Path on the server's filesystem.
        path: String,
    },
}

/// One request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register `tenant/graph` with a deterministic seed (the
    /// byte-reproducibility knob) and a snapshot engine.
    RegisterGraph {
        /// Tenant id.
        tenant: String,
        /// Graph id within the tenant.
        graph: String,
        /// Engine used by snapshot reports (wire-coded; see
        /// [`engine_to_wire`]).
        engine: Engine,
        /// Slack parameter `ε ∈ (0, 1)`.
        epsilon: f64,
        /// Deterministic seed for snapshot reports.
        seed: u64,
        /// Initial edges.
        source: GraphSource,
    },
    /// Apply a batch of updates (deletes first, then inserts) and publish
    /// the next epoch.
    ApplyUpdates {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
        /// The updates.
        updates: Vec<EdgeUpdate>,
    },
    /// The forest color of `edge`.
    ColorOfEdge {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
        /// The (stable) edge id.
        edge: u64,
    },
    /// The root of `vertex`'s tree in `color`'s forest.
    ForestOfVertex {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
        /// The color (forest index).
        color: u64,
        /// The vertex.
        vertex: u64,
    },
    /// The out-edges the orientation assigns `vertex`.
    OrientationOut {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
        /// The vertex.
        vertex: u64,
    },
    /// The live arboricity watermark.
    ArboricityWatermark {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
    },
    /// The epoch's reproducible cold-run report bytes
    /// (`DecompositionReport::canonical_bytes`).
    SnapshotBytes {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
    },
    /// Cumulative stream counters.
    Stats {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
    },
    /// The graph's observability counters (`forest-obs`-style name/value
    /// pairs: requests served, updates applied, publishes, queries …).
    Metrics {
        /// Tenant id.
        tenant: String,
        /// Graph id.
        graph: String,
    },
    /// Stop the server.
    Shutdown,
}

/// Cumulative stream counters as served (a wire copy of
/// `DynamicStats` plus the live totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total updates applied.
    pub updates: u64,
    /// Inserts placed by the free-color fast path.
    pub fast_inserts: u64,
    /// Inserts placed by an augmenting exchange.
    pub exchanges: u64,
    /// Edges recolored across all exchanges.
    pub exchange_recolorings: u64,
    /// Inserts that opened a fresh color.
    pub budget_raises: u64,
    /// Deletes that needed only the cut.
    pub fast_deletes: u64,
    /// Deletes that retired a color by compaction.
    pub compactions: u64,
    /// Edges recolored by compaction drains.
    pub compaction_recolorings: u64,
    /// Live edges at the published epoch.
    pub live_edges: u64,
    /// Color budget at the published epoch.
    pub color_budget: u64,
}

/// One response frame (`Error` travels with status byte 1, everything
/// else with status 0 + the echoed opcode).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `RegisterGraph` succeeded.
    Registered {
        /// Epoch of the registration snapshot (0).
        epoch: u64,
        /// Vertices.
        num_vertices: u64,
        /// Initial live edges.
        live_edges: u64,
        /// Initial color budget.
        color_budget: u64,
    },
    /// `ApplyUpdates` succeeded and published.
    Applied {
        /// The epoch the batch published.
        epoch: u64,
        /// Updates applied.
        applied: u64,
        /// Ids assigned to the batch's inserts, in order.
        inserted_edges: Vec<u64>,
        /// Previously-colored edges whose color changed.
        recolored_edges: u64,
        /// Color budget after the batch.
        color_budget: u64,
        /// Live edges after the batch.
        live_edges: u64,
    },
    /// `ColorOfEdge` answer (`None` = the id is dead or unknown at this
    /// epoch — a normal outcome, not an error).
    EdgeColor {
        /// The answering epoch.
        epoch: u64,
        /// The color, if the edge is live.
        color: Option<u64>,
    },
    /// `ForestOfVertex` answer.
    VertexForest {
        /// The answering epoch.
        epoch: u64,
        /// The canonical root of the vertex's tree in that forest.
        root: u64,
    },
    /// `OrientationOut` answer.
    OutEdges {
        /// The answering epoch.
        epoch: u64,
        /// The vertex's out-edges (≤ color budget of that epoch).
        edges: Vec<u64>,
    },
    /// `ArboricityWatermark` answer.
    Watermark {
        /// The answering epoch.
        epoch: u64,
        /// Best certified arboricity lower bound.
        lower_bound: u64,
        /// Colors in use.
        color_budget: u64,
        /// Live edges.
        live_edges: u64,
        /// Vertices.
        num_vertices: u64,
    },
    /// `SnapshotBytes` answer.
    Snapshot {
        /// The answering epoch.
        epoch: u64,
        /// `DecompositionReport::canonical_bytes` of the epoch's cold run.
        bytes: Vec<u8>,
    },
    /// `Stats` answer.
    StatsReport {
        /// The answering epoch.
        epoch: u64,
        /// The counters.
        stats: WireStats,
    },
    /// `Metrics` answer: the graph's counters as sorted name/value pairs.
    MetricsReport {
        /// The answering epoch.
        epoch: u64,
        /// `(name, value)` pairs in ascending name order (the server emits
        /// a fixed, documented set; clients must tolerate additions).
        entries: Vec<(String, u64)>,
    },
    /// `Shutdown` acknowledged; the server stops accepting connections.
    ShuttingDown,
    /// Typed failure (status byte 1).
    Error(WireError),
}

/// Stable error codes carried by error frames, mirroring `FdError` (plus
/// the server-layer conditions the library never sees).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame failed to decode (bad magic, unknown version or opcode,
    /// truncation, trailing bytes, non-UTF-8 string, oversized count).
    Malformed = 1,
    /// The tenant/graph pair is not registered.
    UnknownGraph = 2,
    /// The tenant/graph pair is already registered.
    AlreadyRegistered = 3,
    /// An update named an edge id that is not live
    /// (`FdError::UnknownEdge`).
    UnknownEdge = 4,
    /// A query named a color or vertex outside the snapshot's range.
    OutOfRange = 5,
    /// The requested engine/problem combination is unsupported
    /// (`FdError::UnsupportedCombination` / `DynamicUnsupported` /
    /// `ShardingUnsupported`).
    Unsupported = 6,
    /// The request was structurally valid but semantically rejected
    /// (`FdError::InvalidEpsilon`, bad bounds, mismatched artifacts …).
    InvalidRequest = 7,
    /// Graph I/O failed on the server (`FdError::Io` — e.g. a bad
    /// `MmapPath`).
    Io = 8,
    /// A structurally invalid update at the graph layer
    /// (`FdError::Graph`: self-loop, endpoint out of range).
    Graph = 9,
    /// Everything else (`FdError::NotConverged`, validation failures …).
    Internal = 10,
}

impl ErrorCode {
    fn from_u16(b: u16) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownGraph,
            3 => ErrorCode::AlreadyRegistered,
            4 => ErrorCode::UnknownEdge,
            5 => ErrorCode::OutOfRange,
            6 => ErrorCode::Unsupported,
            7 => ErrorCode::InvalidRequest,
            8 => ErrorCode::Io,
            9 => ErrorCode::Graph,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The wire value of this error code.
    ///
    /// Enum-to-integer is the one place `as` is unavoidable; the
    /// discriminants are declared `1..=10` above, so the cast is lossless.
    fn wire(self) -> u16 {
        // forest-lint: allow(FL004) audited: ErrorCode discriminants are declared in u16 range
        self as u16
    }
}

/// A typed error frame: a stable [`ErrorCode`] plus the human-readable
/// message (the library error's `Display`, when one caused it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The stable code clients dispatch on.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// An error frame with `code` and `message`.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// A malformed-frame error.
    pub fn malformed(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::Malformed, message)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<FdError> for WireError {
    fn from(err: FdError) -> Self {
        let code = match &err {
            FdError::UnknownEdge { .. } => ErrorCode::UnknownEdge,
            FdError::Graph(_) => ErrorCode::Graph,
            FdError::DynamicUnsupported { .. }
            | FdError::UnsupportedCombination { .. }
            | FdError::ShardingUnsupported { .. } => ErrorCode::Unsupported,
            FdError::InvalidEpsilon { .. }
            | FdError::InvalidShardCount { .. }
            | FdError::ShardOutOfRange { .. }
            | FdError::GraphMismatch { .. }
            | FdError::MissingPalettes { .. }
            | FdError::ArboricityBoundTooSmall { .. }
            | FdError::PaletteTooSmall { .. } => ErrorCode::InvalidRequest,
            FdError::Io { .. } => ErrorCode::Io,
            _ => ErrorCode::Internal,
        };
        WireError::new(code, err.to_string())
    }
}

/// The engine's wire byte.
pub fn engine_to_wire(engine: Engine) -> u8 {
    match engine {
        Engine::HarrisSuVu => 0,
        Engine::BarenboimElkin => 1,
        Engine::Folklore2Alpha => 2,
        Engine::ExactMatroid => 3,
    }
}

/// The engine a wire byte names.
pub fn engine_from_wire(b: u8) -> Option<Engine> {
    Some(match b {
        0 => Engine::HarrisSuVu,
        1 => Engine::BarenboimElkin,
        2 => Engine::Folklore2Alpha,
        3 => Engine::ExactMatroid,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Writes one `[u32 len][payload]` frame.
///
/// # Errors
///
/// Propagates the writer's I/O errors; rejects payloads over
/// [`MAX_FRAME_LEN`] with `InvalidInput`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    // forest-lint: allow(FL004) bounded: the MAX_FRAME_LEN check above caps payload.len()
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.
///
/// # Errors
///
/// Propagates the reader's I/O errors (including clean EOF before the
/// length prefix as `UnexpectedEof`); rejects length prefixes over
/// [`MAX_FRAME_LEN`] with `InvalidData` — the connection is not
/// recoverable after that, since the stream position is ambiguous.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(opcode_or_status: &[u8]) -> Self {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(opcode_or_status);
        Enc(buf)
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(len_u32(s.len()));
        self.0.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(len_u32(b.len()));
        self.0.extend_from_slice(b);
    }

    fn u64s(&mut self, vs: &[u64]) {
        self.u32(len_u32(vs.len()));
        for &v in vs {
            self.u64(v);
        }
    }
}

/// Total `usize -> u32` for wire length prefixes. Saturating is safe here:
/// a saturated length implies a payload far beyond [`MAX_FRAME_LEN`], which
/// [`write_frame`] rejects before anything reaches the wire.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// A bounds-checked little-endian cursor: every read is total (truncation
/// becomes a [`WireError::malformed`], never a panic).
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, WireError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::malformed(format!(
                "truncated frame: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| WireError::malformed("frame bounds check failed".to_string()))?;
        self.pos += n;
        Ok(s)
    }

    /// The next `N` bytes as a fixed array, without indexing: `take`
    /// bounds-checks and `first_chunk` re-proves the length to the type
    /// system, so truncation is a [`WireError`], never a panic.
    fn array<const N: usize>(&mut self) -> DecResult<[u8; N]> {
        let s = self.take(N)?;
        s.first_chunk::<N>()
            .copied()
            .ok_or_else(|| WireError::malformed("frame bounds check failed".to_string()))
    }

    fn u8(&mut self) -> DecResult<u8> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> DecResult<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// A wire `u64` carrying a graph id (edge or vertex): the id space is
    /// `u32`-dense, so anything larger is malformed — constructing the id
    /// anyway would truncate (or panic in debug builds).
    fn id(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        if v > u32::MAX as u64 {
            return Err(WireError::malformed(format!(
                "id {v} exceeds the u32 id space"
            )));
        }
        Ok(v as usize)
    }

    fn str(&mut self) -> DecResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::malformed("string field is not UTF-8"))
    }

    fn bytes(&mut self) -> DecResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// A `u32` element count, validated against the bytes actually left
    /// (`min_item` bytes each) before any allocation happens.
    fn count(&mut self, min_item: usize) -> DecResult<usize> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_item) > self.remaining() {
            return Err(WireError::malformed(format!(
                "count {count} larger than the frame can hold"
            )));
        }
        Ok(count)
    }

    fn u64s(&mut self) -> DecResult<Vec<u64>> {
        let count = self.count(8)?;
        let mut vs = Vec::with_capacity(count);
        for _ in 0..count {
            vs.push(self.u64()?);
        }
        Ok(vs)
    }

    fn finish(&self) -> DecResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::malformed(format!(
                "{} trailing bytes after the message",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Checks the shared magic + version prologue.
    fn prologue(&mut self) -> DecResult<()> {
        let magic = self.u32()?;
        if magic != MAGIC {
            return Err(WireError::malformed(format!(
                "bad magic {magic:#010x} (want FSRV)"
            )));
        }
        let version = self.u16()?;
        if version != VERSION {
            return Err(WireError::malformed(format!(
                "unsupported protocol version {version} (this build speaks {VERSION})"
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encodes a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let op = |o: Opcode| Enc::new(&[o.wire()]);
    let mut e = match req {
        Request::RegisterGraph {
            tenant,
            graph,
            engine,
            epsilon,
            seed,
            source,
        } => {
            let mut e = op(Opcode::RegisterGraph);
            e.str(tenant);
            e.str(graph);
            e.u8(engine_to_wire(*engine));
            e.u64(epsilon.to_bits());
            e.u64(*seed);
            match source {
                GraphSource::Empty { num_vertices } => {
                    e.u8(0);
                    e.u64(*num_vertices);
                }
                GraphSource::Edges {
                    num_vertices,
                    edges,
                } => {
                    e.u8(1);
                    e.u64(*num_vertices);
                    e.u32(len_u32(edges.len()));
                    for &(u, v) in edges {
                        e.u64(u);
                        e.u64(v);
                    }
                }
                GraphSource::MmapPath { path } => {
                    e.u8(2);
                    e.str(path);
                }
            }
            e
        }
        Request::ApplyUpdates {
            tenant,
            graph,
            updates,
        } => {
            let mut e = op(Opcode::ApplyUpdates);
            e.str(tenant);
            e.str(graph);
            e.u32(len_u32(updates.len()));
            for u in updates {
                match *u {
                    EdgeUpdate::Insert { u, v } => {
                        e.u8(0);
                        e.u64(u.index() as u64);
                        e.u64(v.index() as u64);
                    }
                    EdgeUpdate::Delete { edge } => {
                        e.u8(1);
                        e.u64(edge.index() as u64);
                    }
                }
            }
            e
        }
        Request::ColorOfEdge {
            tenant,
            graph,
            edge,
        } => {
            let mut e = op(Opcode::ColorOfEdge);
            e.str(tenant);
            e.str(graph);
            e.u64(*edge);
            e
        }
        Request::ForestOfVertex {
            tenant,
            graph,
            color,
            vertex,
        } => {
            let mut e = op(Opcode::ForestOfVertex);
            e.str(tenant);
            e.str(graph);
            e.u64(*color);
            e.u64(*vertex);
            e
        }
        Request::OrientationOut {
            tenant,
            graph,
            vertex,
        } => {
            let mut e = op(Opcode::OrientationOut);
            e.str(tenant);
            e.str(graph);
            e.u64(*vertex);
            e
        }
        Request::ArboricityWatermark { tenant, graph } => {
            let mut e = op(Opcode::ArboricityWatermark);
            e.str(tenant);
            e.str(graph);
            e
        }
        Request::SnapshotBytes { tenant, graph } => {
            let mut e = op(Opcode::SnapshotBytes);
            e.str(tenant);
            e.str(graph);
            e
        }
        Request::Stats { tenant, graph } => {
            let mut e = op(Opcode::Stats);
            e.str(tenant);
            e.str(graph);
            e
        }
        Request::Metrics { tenant, graph } => {
            let mut e = op(Opcode::Metrics);
            e.str(tenant);
            e.str(graph);
            e
        }
        Request::Shutdown => op(Opcode::Shutdown),
    };
    e.u8(0); // reserved trailer, room for flags without a version bump
    e.0
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`WireError`] with [`ErrorCode::Malformed`] on any structural problem;
/// never panics.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec::new(buf);
    d.prologue()?;
    let opcode = d.u8()?;
    let opcode = Opcode::from_u8(opcode)
        .ok_or_else(|| WireError::malformed(format!("unknown opcode {opcode}")))?;
    let req = match opcode {
        Opcode::RegisterGraph => {
            let tenant = d.str()?;
            let graph = d.str()?;
            let engine_byte = d.u8()?;
            let engine = engine_from_wire(engine_byte)
                .ok_or_else(|| WireError::malformed(format!("unknown engine {engine_byte}")))?;
            let epsilon = f64::from_bits(d.u64()?);
            let seed = d.u64()?;
            let source = match d.u8()? {
                0 => GraphSource::Empty {
                    num_vertices: d.u64()?,
                },
                1 => {
                    let num_vertices = d.u64()?;
                    let count = d.count(16)?;
                    let mut edges = Vec::with_capacity(count);
                    for _ in 0..count {
                        edges.push((d.u64()?, d.u64()?));
                    }
                    GraphSource::Edges {
                        num_vertices,
                        edges,
                    }
                }
                2 => GraphSource::MmapPath { path: d.str()? },
                tag => {
                    return Err(WireError::malformed(format!(
                        "unknown graph source tag {tag}"
                    )))
                }
            };
            Request::RegisterGraph {
                tenant,
                graph,
                engine,
                epsilon,
                seed,
                source,
            }
        }
        Opcode::ApplyUpdates => {
            let tenant = d.str()?;
            let graph = d.str()?;
            let count = d.count(9)?;
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                updates.push(match d.u8()? {
                    0 => {
                        let u = d.id()?;
                        let v = d.id()?;
                        EdgeUpdate::insert(u, v)
                    }
                    1 => EdgeUpdate::delete(EdgeId::new(d.id()?)),
                    tag => return Err(WireError::malformed(format!("unknown update tag {tag}"))),
                });
            }
            Request::ApplyUpdates {
                tenant,
                graph,
                updates,
            }
        }
        Opcode::ColorOfEdge => Request::ColorOfEdge {
            tenant: d.str()?,
            graph: d.str()?,
            edge: d.u64()?,
        },
        Opcode::ForestOfVertex => Request::ForestOfVertex {
            tenant: d.str()?,
            graph: d.str()?,
            color: d.u64()?,
            vertex: d.u64()?,
        },
        Opcode::OrientationOut => Request::OrientationOut {
            tenant: d.str()?,
            graph: d.str()?,
            vertex: d.u64()?,
        },
        Opcode::ArboricityWatermark => Request::ArboricityWatermark {
            tenant: d.str()?,
            graph: d.str()?,
        },
        Opcode::SnapshotBytes => Request::SnapshotBytes {
            tenant: d.str()?,
            graph: d.str()?,
        },
        Opcode::Stats => Request::Stats {
            tenant: d.str()?,
            graph: d.str()?,
        },
        Opcode::Metrics => Request::Metrics {
            tenant: d.str()?,
            graph: d.str()?,
        },
        Opcode::Shutdown => Request::Shutdown,
    };
    let _reserved = d.u8()?;
    d.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

impl Response {
    fn opcode(&self) -> Option<Opcode> {
        Some(match self {
            Response::Registered { .. } => Opcode::RegisterGraph,
            Response::Applied { .. } => Opcode::ApplyUpdates,
            Response::EdgeColor { .. } => Opcode::ColorOfEdge,
            Response::VertexForest { .. } => Opcode::ForestOfVertex,
            Response::OutEdges { .. } => Opcode::OrientationOut,
            Response::Watermark { .. } => Opcode::ArboricityWatermark,
            Response::Snapshot { .. } => Opcode::SnapshotBytes,
            Response::StatsReport { .. } => Opcode::Stats,
            Response::MetricsReport { .. } => Opcode::Metrics,
            Response::ShuttingDown => Opcode::Shutdown,
            Response::Error(_) => return None,
        })
    }
}

/// Encodes a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = match resp.opcode() {
        Some(op) => Enc::new(&[0, op.wire()]),
        None => Enc::new(&[1]),
    };
    match resp {
        Response::Registered {
            epoch,
            num_vertices,
            live_edges,
            color_budget,
        } => {
            e.u64(*epoch);
            e.u64(*num_vertices);
            e.u64(*live_edges);
            e.u64(*color_budget);
        }
        Response::Applied {
            epoch,
            applied,
            inserted_edges,
            recolored_edges,
            color_budget,
            live_edges,
        } => {
            e.u64(*epoch);
            e.u64(*applied);
            e.u64s(inserted_edges);
            e.u64(*recolored_edges);
            e.u64(*color_budget);
            e.u64(*live_edges);
        }
        Response::EdgeColor { epoch, color } => {
            e.u64(*epoch);
            match color {
                Some(c) => {
                    e.u8(1);
                    e.u64(*c);
                }
                None => e.u8(0),
            }
        }
        Response::VertexForest { epoch, root } => {
            e.u64(*epoch);
            e.u64(*root);
        }
        Response::OutEdges { epoch, edges } => {
            e.u64(*epoch);
            e.u64s(edges);
        }
        Response::Watermark {
            epoch,
            lower_bound,
            color_budget,
            live_edges,
            num_vertices,
        } => {
            e.u64(*epoch);
            e.u64(*lower_bound);
            e.u64(*color_budget);
            e.u64(*live_edges);
            e.u64(*num_vertices);
        }
        Response::Snapshot { epoch, bytes } => {
            e.u64(*epoch);
            e.bytes(bytes);
        }
        Response::StatsReport { epoch, stats } => {
            e.u64(*epoch);
            for v in [
                stats.updates,
                stats.fast_inserts,
                stats.exchanges,
                stats.exchange_recolorings,
                stats.budget_raises,
                stats.fast_deletes,
                stats.compactions,
                stats.compaction_recolorings,
                stats.live_edges,
                stats.color_budget,
            ] {
                e.u64(v);
            }
        }
        Response::MetricsReport { epoch, entries } => {
            e.u64(*epoch);
            e.u32(len_u32(entries.len()));
            for (name, value) in entries {
                e.str(name);
                e.u64(*value);
            }
        }
        Response::ShuttingDown => {}
        Response::Error(err) => {
            e.u16(err.code.wire());
            e.str(&err.message);
        }
    }
    e.0
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`WireError`] with [`ErrorCode::Malformed`] on any structural problem;
/// never panics. A well-formed error *frame* decodes to
/// `Ok(Response::Error(..))`, not `Err`.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec::new(buf);
    d.prologue()?;
    let status = d.u8()?;
    let resp = match status {
        1 => {
            let code_raw = d.u16()?;
            let code = ErrorCode::from_u16(code_raw)
                .ok_or_else(|| WireError::malformed(format!("unknown error code {code_raw}")))?;
            Response::Error(WireError::new(code, d.str()?))
        }
        0 => {
            let opcode = d.u8()?;
            let opcode = Opcode::from_u8(opcode)
                .ok_or_else(|| WireError::malformed(format!("unknown response opcode {opcode}")))?;
            match opcode {
                Opcode::RegisterGraph => Response::Registered {
                    epoch: d.u64()?,
                    num_vertices: d.u64()?,
                    live_edges: d.u64()?,
                    color_budget: d.u64()?,
                },
                Opcode::ApplyUpdates => Response::Applied {
                    epoch: d.u64()?,
                    applied: d.u64()?,
                    inserted_edges: d.u64s()?,
                    recolored_edges: d.u64()?,
                    color_budget: d.u64()?,
                    live_edges: d.u64()?,
                },
                Opcode::ColorOfEdge => Response::EdgeColor {
                    epoch: d.u64()?,
                    color: match d.u8()? {
                        0 => None,
                        1 => Some(d.u64()?),
                        tag => {
                            return Err(WireError::malformed(format!("unknown option tag {tag}")))
                        }
                    },
                },
                Opcode::ForestOfVertex => Response::VertexForest {
                    epoch: d.u64()?,
                    root: d.u64()?,
                },
                Opcode::OrientationOut => Response::OutEdges {
                    epoch: d.u64()?,
                    edges: d.u64s()?,
                },
                Opcode::ArboricityWatermark => Response::Watermark {
                    epoch: d.u64()?,
                    lower_bound: d.u64()?,
                    color_budget: d.u64()?,
                    live_edges: d.u64()?,
                    num_vertices: d.u64()?,
                },
                Opcode::SnapshotBytes => Response::Snapshot {
                    epoch: d.u64()?,
                    bytes: d.bytes()?,
                },
                Opcode::Stats => {
                    let epoch = d.u64()?;
                    // Field order matches encode_response's `for v in [...]`
                    // loop; reading sequentially keeps the decode total.
                    Response::StatsReport {
                        epoch,
                        stats: WireStats {
                            updates: d.u64()?,
                            fast_inserts: d.u64()?,
                            exchanges: d.u64()?,
                            exchange_recolorings: d.u64()?,
                            budget_raises: d.u64()?,
                            fast_deletes: d.u64()?,
                            compactions: d.u64()?,
                            compaction_recolorings: d.u64()?,
                            live_edges: d.u64()?,
                            color_budget: d.u64()?,
                        },
                    }
                }
                Opcode::Metrics => {
                    let epoch = d.u64()?;
                    // Min bytes per entry: a 4-byte (possibly empty-string)
                    // length prefix + an 8-byte value — validated against
                    // the remaining frame before the Vec is sized.
                    let count = d.count(12)?;
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let name = d.str()?;
                        let value = d.u64()?;
                        entries.push((name, value));
                    }
                    Response::MetricsReport { epoch, entries }
                }
                Opcode::Shutdown => Response::ShuttingDown,
            }
        }
        s => return Err(WireError::malformed(format!("unknown status byte {s}"))),
    };
    d.finish()?;
    Ok(resp)
}
