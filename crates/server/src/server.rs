//! The TCP front end: `std::net::TcpListener` + one thread per
//! connection, no extra dependencies.
//!
//! Each connection speaks the frame protocol of [`protocol`](crate::protocol):
//! read a request frame, dispatch into the shared [`ServerState`], write
//! the response frame, repeat until the peer hangs up. A `Shutdown`
//! request is acknowledged on its own connection, then stops the accept
//! loop (a loopback self-connect unblocks `accept`) and drains every
//! worker thread before [`Server::serve`] returns — the clean-shutdown
//! contract the CI smoke job asserts. The drain half-closes the read
//! side of every still-open connection: an in-flight request still gets
//! its response written, but a worker parked in `read_frame` on an idle
//! connection sees EOF and exits instead of pinning the drain forever.

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, WireError,
};
use crate::state::ServerState;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A bound, not-yet-serving decomposition server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick; read it back with
    /// [`local_addr`](Server::local_addr)).
    ///
    /// # Errors
    ///
    /// Whatever [`TcpListener::bind`] reports.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServerState::new()),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Whatever [`TcpListener::local_addr`] reports.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared registry (pre-register graphs before serving, or share
    /// it with in-process readers).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves connections until a `Shutdown` request arrives;
    /// drains every connection thread before returning.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only — per-connection I/O problems close
    /// that connection and keep serving.
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers: Vec<(thread::JoinHandle<()>, Option<TcpStream>)> = Vec::new();
        for incoming in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match incoming {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            // A second handle to the same socket, kept by the accept loop
            // so the drain below can half-close connections whose worker
            // is parked in a blocking read.
            let peer = stream.try_clone().ok();
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&shutdown);
            workers.push((
                thread::spawn(move || {
                    serve_connection(&mut stream, &state, &shutdown, addr);
                    // The accept loop may still hold a clone of this
                    // socket; an explicit shutdown sends the FIN now so
                    // the peer sees the connection close as soon as the
                    // worker is done, not when the clone is reaped.
                    let _ = stream.shutdown(Shutdown::Both);
                }),
                peer,
            ));
            // Reap finished workers so the handle list stays bounded on
            // long-lived servers.
            workers.retain(|(w, _)| !w.is_finished());
        }
        // Half-close the read side of every surviving connection: workers
        // blocked in `read_frame` wake up with EOF, while a response for
        // an in-flight request still goes out on the intact write side.
        for (_, peer) in &workers {
            if let Some(peer) = peer {
                let _ = peer.shutdown(Shutdown::Read);
            }
        }
        for (w, _) in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// One connection's request loop.
fn serve_connection(
    stream: &mut TcpStream,
    state: &ServerState,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    loop {
        let payload = match read_frame(stream) {
            Ok(payload) => payload,
            // Peer hung up (or broke framing, which is unrecoverable:
            // the stream position is ambiguous).
            Err(_) => return,
        };
        let response = match decode_request(&payload) {
            Ok(Request::Shutdown) => {
                let _ = write_frame(stream, &encode_response(&Response::ShuttingDown));
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            Ok(request) => state.handle(&request),
            Err(err) => Response::Error(err),
        };
        let malformed = matches!(&response, Response::Error(WireError { code, .. })
            if *code == crate::protocol::ErrorCode::Malformed);
        if write_frame(stream, &encode_response(&response)).is_err() {
            return;
        }
        if malformed {
            // After a malformed frame the peer's framing can't be
            // trusted; the typed error is sent, then the connection
            // closes.
            return;
        }
    }
}
