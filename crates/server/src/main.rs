//! The `forest-serve` binary: bind, announce, serve until a `Shutdown`
//! frame arrives.
//!
//! Usage: `forest-serve [ADDR]` (default `127.0.0.1:7433`; use port 0 to
//! let the OS pick). The bound address is printed to stdout as
//! `forest-serve listening on ADDR` before serving, so harnesses that
//! start the binary with port 0 can read the port back.

use forest_serve::Server;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let addr = match (args.next(), args.next()) {
        (None, _) => "127.0.0.1:7433".to_string(),
        (Some(addr), None) if addr != "--help" && addr != "-h" => addr,
        _ => {
            eprintln!("usage: forest-serve [ADDR]   (default 127.0.0.1:7433)");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&addr) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("forest-serve: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => {
            println!("forest-serve listening on {bound}");
            let _ = std::io::stdout().flush();
        }
        Err(err) => {
            eprintln!("forest-serve: cannot read bound address: {err}");
            return ExitCode::FAILURE;
        }
    }
    match server.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("forest-serve: {err}");
            ExitCode::FAILURE
        }
    }
}
