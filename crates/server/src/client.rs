//! A small blocking client over the frame protocol — the same module the
//! integration tests, the CI smoke job and the benchmarks drive.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, GraphSource, Request, Response,
    WireError, WireStats,
};
use forest_decomp::api::EdgeUpdate;
use forest_decomp::Engine;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, peer hang-up).
    Io(io::Error),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// The server's response failed to decode, or answered a different
    /// request kind than was asked.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Server(err) => write!(f, "server error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// What `ApplyUpdates` came back with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Applied {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Updates applied.
    pub applied: u64,
    /// Ids the server assigned to the batch's inserts, in order.
    pub inserted_edges: Vec<u64>,
    /// Previously-colored edges whose color changed.
    pub recolored_edges: u64,
    /// Color budget after the batch.
    pub color_budget: u64,
    /// Live edges after the batch.
    pub live_edges: u64,
}

/// The watermark a snapshot reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watermark {
    /// The answering epoch.
    pub epoch: u64,
    /// Best certified arboricity lower bound.
    pub lower_bound: u64,
    /// Colors in use.
    pub color_budget: u64,
    /// Live edges.
    pub live_edges: u64,
    /// Vertices.
    pub num_vertices: u64,
}

/// A blocking connection to a `forest-serve` instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Whatever [`TcpStream::connect`] reports.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Server`]
    /// when the server answers a typed error frame,
    /// [`ClientError::Protocol`] when the response fails to decode.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream)?;
        match decode_response(&payload) {
            Ok(Response::Error(err)) => Err(ClientError::Server(err)),
            Ok(resp) => Ok(resp),
            Err(err) => Err(ClientError::Protocol(err.to_string())),
        }
    }

    /// Registers `(tenant, graph)` from `source`; answers
    /// `(epoch, num_vertices, live_edges, color_budget)`.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn register(
        &mut self,
        tenant: &str,
        graph: &str,
        engine: Engine,
        epsilon: f64,
        seed: u64,
        source: GraphSource,
    ) -> Result<(u64, u64, u64, u64), ClientError> {
        match self.call(&Request::RegisterGraph {
            tenant: tenant.into(),
            graph: graph.into(),
            engine,
            epsilon,
            seed,
            source,
        })? {
            Response::Registered {
                epoch,
                num_vertices,
                live_edges,
                color_budget,
            } => Ok((epoch, num_vertices, live_edges, color_budget)),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Applies a batch of updates and publishes the next epoch.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn apply_updates(
        &mut self,
        tenant: &str,
        graph: &str,
        updates: Vec<EdgeUpdate>,
    ) -> Result<Applied, ClientError> {
        match self.call(&Request::ApplyUpdates {
            tenant: tenant.into(),
            graph: graph.into(),
            updates,
        })? {
            Response::Applied {
                epoch,
                applied,
                inserted_edges,
                recolored_edges,
                color_budget,
                live_edges,
            } => Ok(Applied {
                epoch,
                applied,
                inserted_edges,
                recolored_edges,
                color_budget,
                live_edges,
            }),
            other => Err(unexpected("Applied", &other)),
        }
    }

    /// The forest color of `edge` (`None` = dead or unknown id), with the
    /// answering epoch.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn color_of_edge(
        &mut self,
        tenant: &str,
        graph: &str,
        edge: u64,
    ) -> Result<(u64, Option<u64>), ClientError> {
        match self.call(&Request::ColorOfEdge {
            tenant: tenant.into(),
            graph: graph.into(),
            edge,
        })? {
            Response::EdgeColor { epoch, color } => Ok((epoch, color)),
            other => Err(unexpected("EdgeColor", &other)),
        }
    }

    /// The canonical root of `vertex`'s tree in `color`'s forest.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn forest_of_vertex(
        &mut self,
        tenant: &str,
        graph: &str,
        color: u64,
        vertex: u64,
    ) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::ForestOfVertex {
            tenant: tenant.into(),
            graph: graph.into(),
            color,
            vertex,
        })? {
            Response::VertexForest { epoch, root } => Ok((epoch, root)),
            other => Err(unexpected("VertexForest", &other)),
        }
    }

    /// The out-edges the orientation assigns `vertex`.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn orientation_out(
        &mut self,
        tenant: &str,
        graph: &str,
        vertex: u64,
    ) -> Result<(u64, Vec<u64>), ClientError> {
        match self.call(&Request::OrientationOut {
            tenant: tenant.into(),
            graph: graph.into(),
            vertex,
        })? {
            Response::OutEdges { epoch, edges } => Ok((epoch, edges)),
            other => Err(unexpected("OutEdges", &other)),
        }
    }

    /// The live arboricity watermark.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn watermark(&mut self, tenant: &str, graph: &str) -> Result<Watermark, ClientError> {
        match self.call(&Request::ArboricityWatermark {
            tenant: tenant.into(),
            graph: graph.into(),
        })? {
            Response::Watermark {
                epoch,
                lower_bound,
                color_budget,
                live_edges,
                num_vertices,
            } => Ok(Watermark {
                epoch,
                lower_bound,
                color_budget,
                live_edges,
                num_vertices,
            }),
            other => Err(unexpected("Watermark", &other)),
        }
    }

    /// The epoch's reproducible cold-run report bytes.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn snapshot_bytes(
        &mut self,
        tenant: &str,
        graph: &str,
    ) -> Result<(u64, Vec<u8>), ClientError> {
        match self.call(&Request::SnapshotBytes {
            tenant: tenant.into(),
            graph: graph.into(),
        })? {
            Response::Snapshot { epoch, bytes } => Ok((epoch, bytes)),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Cumulative stream counters at the published epoch.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn stats(&mut self, tenant: &str, graph: &str) -> Result<(u64, WireStats), ClientError> {
        match self.call(&Request::Stats {
            tenant: tenant.into(),
            graph: graph.into(),
        })? {
            Response::StatsReport { epoch, stats } => Ok((epoch, stats)),
            other => Err(unexpected("StatsReport", &other)),
        }
    }

    /// The tenant's service counters as `(name, value)` pairs in
    /// ascending name order, with the answering epoch. Counters are
    /// monotonically non-decreasing; clients must tolerate new names
    /// appearing between calls.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn metrics(
        &mut self,
        tenant: &str,
        graph: &str,
    ) -> Result<(u64, Vec<(String, u64)>), ClientError> {
        match self.call(&Request::Metrics {
            tenant: tenant.into(),
            graph: graph.into(),
        })? {
            Response::MetricsReport { epoch, entries } => Ok((epoch, entries)),
            other => Err(unexpected("MetricsReport", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    ///
    /// # Errors
    ///
    /// See [`call`](Client::call).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
