//! The resident engine: a tenant registry mapping `(tenant, graph)` ids
//! to versioned decomposers, and the request handler every connection
//! thread calls into.
//!
//! Concurrency layout: the registry itself is an `RwLock<HashMap>`, taken
//! for writing only by `RegisterGraph`. Each entry owns its **writer**
//! (the [`VersionedDecomposer`] behind a `Mutex` — update batches for the
//! same graph serialize, different graphs proceed in parallel) and its
//! **reader** (a lock-free [`SnapshotReader`]). The query path is a
//! registry read-lock (uncontended once tenants are registered) plus a
//! lock-free snapshot clone: queries never touch the writer mutex, so
//! readers never block on a concurrent update batch — the property the
//! concurrent-reader test and the `BENCH_pr6.json` service rows pin down.

use crate::protocol::{ErrorCode, GraphSource, Request, Response, WireError, WireStats};
use forest_decomp::api::versioned::{ColoringSnapshot, SnapshotReader, VersionedDecomposer};
use forest_decomp::api::{DecompositionRequest, EdgeUpdate, ProblemKind};
use forest_decomp::{Engine, FdError};
use forest_graph::{Color, EdgeId, MmapCsr, MultiGraph, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Per-`(tenant, graph)` service counters, maintained by the request
/// handler and served over the wire by the `Metrics` op.
///
/// These are *service-level* counters (what did this tenant ask of the
/// server), distinct from the process-wide `forest-obs` registry that
/// the library layers feed: a multi-tenant process has one registry but
/// one `TenantMetrics` per registered graph. Counter names are dynamic
/// per tenant, which is exactly what the static-`&str`-keyed registry
/// is not for — hence a plain struct of atomics.
///
/// All counters are monotonically non-decreasing for the lifetime of
/// the entry; `server_smoke` pins that down across update batches.
#[derive(Default)]
pub struct TenantMetrics {
    /// Requests of any kind routed to this entry (including failed ones).
    requests_total: AtomicU64,
    /// `ApplyUpdates` batches routed to this entry.
    update_batches_total: AtomicU64,
    /// Individual updates successfully applied across all batches.
    updates_applied_total: AtomicU64,
    /// Epochs published by this entry's writer.
    publishes_total: AtomicU64,
    /// Read-path queries served from a snapshot.
    queries_total: AtomicU64,
    /// Requests answered with a typed error.
    errors_total: AtomicU64,
}

impl TenantMetrics {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// The counters as `(name, value)` pairs in ascending name order —
    /// the wire contract of [`Response::MetricsReport`].
    fn entries(&self) -> Vec<(String, u64)> {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("errors_total".to_string(), read(&self.errors_total)),
            ("publishes_total".to_string(), read(&self.publishes_total)),
            ("queries_total".to_string(), read(&self.queries_total)),
            ("requests_total".to_string(), read(&self.requests_total)),
            (
                "update_batches_total".to_string(),
                read(&self.update_batches_total),
            ),
            (
                "updates_applied_total".to_string(),
                read(&self.updates_applied_total),
            ),
        ]
    }
}

/// One registered graph: the serialized writer, the lock-free reader,
/// and the tenant's service counters.
pub struct GraphEntry {
    writer: Mutex<VersionedDecomposer>,
    reader: SnapshotReader,
    metrics: TenantMetrics,
}

impl GraphEntry {
    fn new(vd: VersionedDecomposer) -> Self {
        let reader = vd.reader();
        GraphEntry {
            writer: Mutex::new(vd),
            reader,
            metrics: TenantMetrics::default(),
        }
    }

    /// The entry's lock-free snapshot reader.
    pub fn reader(&self) -> &SnapshotReader {
        &self.reader
    }
}

/// The shared server state: every registered graph, addressable by
/// `(tenant, graph)`.
#[derive(Default)]
pub struct ServerState {
    graphs: RwLock<HashMap<(String, String), Arc<GraphEntry>>>,
}

impl ServerState {
    /// An empty registry.
    pub fn new() -> Self {
        ServerState::default()
    }

    /// Registers `(tenant, graph)` from `source`, publishing the
    /// registration snapshot as epoch 0.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::AlreadyRegistered`] when the pair exists, typed
    /// mirrors of the library errors otherwise (bad epsilon, unsupported
    /// engine, I/O on an `MmapPath`, structurally invalid inline edges).
    pub fn register(
        &self,
        tenant: &str,
        graph: &str,
        engine: Engine,
        epsilon: f64,
        seed: u64,
        source: &GraphSource,
    ) -> Result<Arc<ColoringSnapshot>, WireError> {
        let key = (tenant.to_string(), graph.to_string());
        // Cheap pre-check without building anything; the authoritative
        // check repeats under the write lock.
        if self.lookup(tenant, graph).is_some() {
            return Err(already_registered(tenant, graph));
        }
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(engine)
            .with_epsilon(epsilon)
            .with_seed(seed);
        let vd = match source {
            GraphSource::Empty { num_vertices } => {
                VersionedDecomposer::new(request, usize_of(*num_vertices)?)?
            }
            GraphSource::Edges {
                num_vertices,
                edges,
            } => {
                let mut g = MultiGraph::new(usize_of(*num_vertices)?);
                for &(u, v) in edges {
                    g.add_edge(VertexId::new(usize_of(u)?), VertexId::new(usize_of(v)?))
                        .map_err(FdError::Graph)?;
                }
                VersionedDecomposer::from_graph(request, &g)?
            }
            GraphSource::MmapPath { path } => {
                let csr = MmapCsr::load_mmap(path).map_err(|err| FdError::Io {
                    context: format!("mmap-loading {path}: {err}"),
                })?;
                VersionedDecomposer::from_view(request, &csr)?
            }
        };
        let snap = vd.current();
        let entry = Arc::new(GraphEntry::new(vd));
        let mut graphs = self.graphs.write().unwrap_or_else(PoisonError::into_inner);
        if graphs.contains_key(&key) {
            return Err(already_registered(tenant, graph));
        }
        graphs.insert(key, entry);
        Ok(snap)
    }

    /// The entry for `(tenant, graph)`, if registered.
    pub fn lookup(&self, tenant: &str, graph: &str) -> Option<Arc<GraphEntry>> {
        let graphs = self.graphs.read().unwrap_or_else(PoisonError::into_inner);
        graphs
            .get(&(tenant.to_string(), graph.to_string()))
            .cloned()
    }

    /// Applies an update batch to `(tenant, graph)`'s writer and
    /// publishes the next epoch. On a mid-batch error the applied prefix
    /// is still published (matching the sequential semantics of
    /// `apply_batch`: the prefix *happened*), so readers never see a
    /// state the writer left behind silently.
    fn apply_updates(&self, tenant: &str, graph: &str, updates: &[EdgeUpdate]) -> Response {
        let Some(entry) = self.lookup(tenant, graph) else {
            return Response::Error(unknown_graph(tenant, graph));
        };
        TenantMetrics::bump(&entry.metrics.requests_total, 1);
        TenantMetrics::bump(&entry.metrics.update_batches_total, 1);
        let mut writer = entry.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let outcome = writer.apply_batch(updates);
        let snap = writer.publish();
        TenantMetrics::bump(&entry.metrics.publishes_total, 1);
        match outcome {
            Ok(report) => {
                TenantMetrics::bump(&entry.metrics.updates_applied_total, report.applied as u64);
                Response::Applied {
                    epoch: snap.epoch(),
                    applied: report.applied as u64,
                    inserted_edges: report
                        .inserted_edges
                        .iter()
                        .map(|e| e.index() as u64)
                        .collect(),
                    recolored_edges: report.recolored_edges as u64,
                    color_budget: report.color_budget as u64,
                    live_edges: report.live_edges as u64,
                }
            }
            Err(err) => {
                TenantMetrics::bump(&entry.metrics.errors_total, 1);
                Response::Error(WireError::from(err))
            }
        }
    }

    /// Serves one decoded request. `Shutdown` is not handled here — the
    /// connection layer owns the accept loop.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::RegisterGraph {
                tenant,
                graph,
                engine,
                epsilon,
                seed,
                source,
            } => match self.register(tenant, graph, *engine, *epsilon, *seed, source) {
                Ok(snap) => Response::Registered {
                    epoch: snap.epoch(),
                    num_vertices: snap.num_vertices() as u64,
                    live_edges: snap.live_edges() as u64,
                    color_budget: snap.color_budget() as u64,
                },
                Err(err) => Response::Error(err),
            },
            Request::ApplyUpdates {
                tenant,
                graph,
                updates,
            } => self.apply_updates(tenant, graph, updates),
            Request::ColorOfEdge {
                tenant,
                graph,
                edge,
            } => self.query(tenant, graph, |snap| {
                let color = usize_of(*edge)
                    .ok()
                    .and_then(|e| snap.color_of_edge(EdgeId::new(e)))
                    .map(|c| c.index() as u64);
                Ok(Response::EdgeColor {
                    epoch: snap.epoch(),
                    color,
                })
            }),
            Request::ForestOfVertex {
                tenant,
                graph,
                color,
                vertex,
            } => self.query(tenant, graph, |snap| {
                let c = Color::new(usize_of(*color)?);
                let v = VertexId::new(usize_of(*vertex)?);
                match snap.forest_of_vertex(c, v) {
                    Some(root) => Ok(Response::VertexForest {
                        epoch: snap.epoch(),
                        root: root.index() as u64,
                    }),
                    None => Err(WireError::new(
                        ErrorCode::OutOfRange,
                        format!(
                            "color {color} or vertex {vertex} out of range at epoch {} \
                             (budget {}, {} vertices)",
                            snap.epoch(),
                            snap.color_budget(),
                            snap.num_vertices()
                        ),
                    )),
                }
            }),
            Request::OrientationOut {
                tenant,
                graph,
                vertex,
            } => self.query(tenant, graph, |snap| {
                let v = VertexId::new(usize_of(*vertex)?);
                match snap.orientation_out(v) {
                    Some(edges) => Ok(Response::OutEdges {
                        epoch: snap.epoch(),
                        edges: edges.iter().map(|e| e.index() as u64).collect(),
                    }),
                    None => Err(WireError::new(
                        ErrorCode::OutOfRange,
                        format!(
                            "vertex {vertex} out of range ({} vertices)",
                            snap.num_vertices()
                        ),
                    )),
                }
            }),
            Request::ArboricityWatermark { tenant, graph } => self.query(tenant, graph, |snap| {
                let w = snap.watermark();
                Ok(Response::Watermark {
                    epoch: w.epoch,
                    lower_bound: w.lower_bound as u64,
                    color_budget: w.color_budget as u64,
                    live_edges: w.live_edges as u64,
                    num_vertices: w.num_vertices as u64,
                })
            }),
            Request::SnapshotBytes { tenant, graph } => self.query(tenant, graph, |snap| {
                let bytes = snap.canonical_bytes()?;
                Ok(Response::Snapshot {
                    epoch: snap.epoch(),
                    bytes,
                })
            }),
            Request::Stats { tenant, graph } => self.query(tenant, graph, |snap| {
                let s = snap.stats();
                Ok(Response::StatsReport {
                    epoch: snap.epoch(),
                    stats: WireStats {
                        updates: s.updates as u64,
                        fast_inserts: s.fast_inserts as u64,
                        exchanges: s.exchanges as u64,
                        exchange_recolorings: s.exchange_recolorings as u64,
                        budget_raises: s.budget_raises as u64,
                        fast_deletes: s.fast_deletes as u64,
                        compactions: s.compactions as u64,
                        compaction_recolorings: s.compaction_recolorings as u64,
                        live_edges: snap.live_edges() as u64,
                        color_budget: snap.color_budget() as u64,
                    },
                })
            }),
            Request::Metrics { tenant, graph } => {
                let Some(entry) = self.lookup(tenant, graph) else {
                    return Response::Error(unknown_graph(tenant, graph));
                };
                TenantMetrics::bump(&entry.metrics.requests_total, 1);
                // Read the counters *after* counting this request, so a
                // client polling only `Metrics` still observes strictly
                // increasing `requests_total`.
                Response::MetricsReport {
                    epoch: entry.reader().current().epoch(),
                    entries: entry.metrics.entries(),
                }
            }
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// The read path: registry read-lock, lock-free snapshot clone, then
    /// `f` against that pinned epoch. The writer mutex is never touched.
    fn query<F>(&self, tenant: &str, graph: &str, f: F) -> Response
    where
        F: FnOnce(&ColoringSnapshot) -> Result<Response, WireError>,
    {
        let Some(entry) = self.lookup(tenant, graph) else {
            return Response::Error(unknown_graph(tenant, graph));
        };
        TenantMetrics::bump(&entry.metrics.requests_total, 1);
        TenantMetrics::bump(&entry.metrics.queries_total, 1);
        let snap = entry.reader().current();
        let resp = f(&snap).unwrap_or_else(Response::Error);
        if matches!(resp, Response::Error(_)) {
            TenantMetrics::bump(&entry.metrics.errors_total, 1);
        }
        resp
    }
}

fn unknown_graph(tenant: &str, graph: &str) -> WireError {
    WireError::new(
        ErrorCode::UnknownGraph,
        format!("no graph {graph:?} registered for tenant {tenant:?}"),
    )
}

fn already_registered(tenant: &str, graph: &str) -> WireError {
    WireError::new(
        ErrorCode::AlreadyRegistered,
        format!("tenant {tenant:?} already registered graph {graph:?}"),
    )
}

/// Checked `u64 → usize`, bounded by the `u32`-dense id space every graph
/// identifier (vertex, edge, color, vertex count) lives in — constructing
/// an id past that would truncate.
fn usize_of(v: u64) -> Result<usize, WireError> {
    if v > u32::MAX as u64 {
        return Err(WireError::new(
            ErrorCode::OutOfRange,
            format!("value {v} exceeds the u32 id space"),
        ));
    }
    Ok(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register_triangle(state: &ServerState) {
        let resp = state.handle(&Request::RegisterGraph {
            tenant: "acme".into(),
            graph: "g".into(),
            engine: Engine::ExactMatroid,
            epsilon: 0.5,
            seed: 7,
            source: GraphSource::Edges {
                num_vertices: 3,
                edges: vec![(0, 1), (1, 2), (2, 0)],
            },
        });
        assert!(
            matches!(
                resp,
                Response::Registered {
                    epoch: 0,
                    live_edges: 3,
                    ..
                }
            ),
            "{resp:?}"
        );
    }

    #[test]
    fn register_apply_query_cycle() {
        let state = ServerState::new();
        register_triangle(&state);
        // Duplicate registration is a typed error.
        let resp = state.handle(&Request::RegisterGraph {
            tenant: "acme".into(),
            graph: "g".into(),
            engine: Engine::ExactMatroid,
            epsilon: 0.5,
            seed: 7,
            source: GraphSource::Empty { num_vertices: 1 },
        });
        assert!(
            matches!(
                resp,
                Response::Error(WireError {
                    code: ErrorCode::AlreadyRegistered,
                    ..
                })
            ),
            "{resp:?}"
        );
        // Unknown graph is a typed error.
        let resp = state.handle(&Request::Stats {
            tenant: "acme".into(),
            graph: "nope".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Error(WireError {
                    code: ErrorCode::UnknownGraph,
                    ..
                })
            ),
            "{resp:?}"
        );
        // Apply publishes epoch 1 and reports assigned ids.
        let resp = state.handle(&Request::ApplyUpdates {
            tenant: "acme".into(),
            graph: "g".into(),
            updates: vec![EdgeUpdate::insert(0, 2), EdgeUpdate::delete(EdgeId::new(0))],
        });
        let Response::Applied {
            epoch,
            applied,
            inserted_edges,
            live_edges,
            ..
        } = resp
        else {
            panic!("{resp:?}");
        };
        assert_eq!((epoch, applied, live_edges), (1, 2, 3));
        assert_eq!(inserted_edges.len(), 1);
        // Queries answer at the published epoch.
        let resp = state.handle(&Request::ColorOfEdge {
            tenant: "acme".into(),
            graph: "g".into(),
            edge: 0,
        });
        assert!(
            matches!(
                resp,
                Response::EdgeColor {
                    epoch: 1,
                    color: None
                }
            ),
            "deleted edge answers None: {resp:?}"
        );
        let resp = state.handle(&Request::ArboricityWatermark {
            tenant: "acme".into(),
            graph: "g".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Watermark {
                    epoch: 1,
                    lower_bound: 2,
                    ..
                }
            ),
            "3 edges on 3 vertices: NW bound 2: {resp:?}"
        );
        // Out-of-range query is typed, not a panic.
        let resp = state.handle(&Request::ForestOfVertex {
            tenant: "acme".into(),
            graph: "g".into(),
            color: 99,
            vertex: 0,
        });
        assert!(
            matches!(
                resp,
                Response::Error(WireError {
                    code: ErrorCode::OutOfRange,
                    ..
                })
            ),
            "{resp:?}"
        );
    }

    #[test]
    fn mid_batch_error_still_publishes_prefix() {
        let state = ServerState::new();
        register_triangle(&state);
        let resp = state.handle(&Request::ApplyUpdates {
            tenant: "acme".into(),
            graph: "g".into(),
            updates: vec![
                EdgeUpdate::insert(0, 1),
                EdgeUpdate::insert(1, 1), // self-loop
            ],
        });
        assert!(
            matches!(
                resp,
                Response::Error(WireError {
                    code: ErrorCode::Graph,
                    ..
                })
            ),
            "{resp:?}"
        );
        // The prefix was applied AND published.
        let resp = state.handle(&Request::Stats {
            tenant: "acme".into(),
            graph: "g".into(),
        });
        let Response::StatsReport { epoch, stats } = resp else {
            panic!("{resp:?}");
        };
        assert_eq!(epoch, 1);
        assert_eq!(stats.live_edges, 4);
    }

    fn metric(entries: &[(String, u64)], name: &str) -> u64 {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .1
    }

    #[test]
    fn metrics_count_the_tenants_traffic() {
        let state = ServerState::new();
        register_triangle(&state);
        let metrics_req = Request::Metrics {
            tenant: "acme".into(),
            graph: "g".into(),
        };
        let Response::MetricsReport { epoch, entries } = state.handle(&metrics_req) else {
            panic!("metrics on a fresh entry");
        };
        assert_eq!(epoch, 0);
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "entries arrive in ascending name order");
        assert_eq!(metric(&entries, "requests_total"), 1);
        assert_eq!(metric(&entries, "update_batches_total"), 0);
        // One update batch + one query + one failed query.
        state.handle(&Request::ApplyUpdates {
            tenant: "acme".into(),
            graph: "g".into(),
            updates: vec![EdgeUpdate::insert(0, 2)],
        });
        state.handle(&Request::Stats {
            tenant: "acme".into(),
            graph: "g".into(),
        });
        state.handle(&Request::ForestOfVertex {
            tenant: "acme".into(),
            graph: "g".into(),
            color: 99,
            vertex: 0,
        });
        let Response::MetricsReport { epoch, entries } = state.handle(&metrics_req) else {
            panic!("metrics after traffic");
        };
        assert_eq!(epoch, 1);
        assert_eq!(metric(&entries, "requests_total"), 5);
        assert_eq!(metric(&entries, "update_batches_total"), 1);
        assert_eq!(metric(&entries, "updates_applied_total"), 1);
        assert_eq!(metric(&entries, "publishes_total"), 1);
        assert_eq!(metric(&entries, "queries_total"), 2);
        assert_eq!(metric(&entries, "errors_total"), 1);
        // Unknown graph stays a typed error.
        let resp = state.handle(&Request::Metrics {
            tenant: "acme".into(),
            graph: "nope".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Error(WireError {
                    code: ErrorCode::UnknownGraph,
                    ..
                })
            ),
            "{resp:?}"
        );
    }
}
