//! # forest-obs — the workspace observability substrate
//!
//! One crate, zero external dependencies, three layers:
//!
//! * [`clock`] — the workspace's **single wall-clock module** (the only
//!   FL005-allowed `Instant::now` site). [`clock::Stopwatch`] replaces the
//!   `Instant::now()/elapsed()` idiom everywhere; [`clock::ManualClock`]
//!   makes timing-derived behavior deterministic in tests.
//! * [`metrics`] — always-on counters, gauges and log₂-bucketed
//!   histograms addressed by [`metrics::MetricId`]s, registered through
//!   `Lazy*` statics so hot paths never take a lock. Snapshots are
//!   name-ordered (deterministic) and histogram snapshots merge
//!   associatively across threads and shards.
//! * [`trace`] — opt-in spans and instants behind the process
//!   [`trace::Recorder`]. Disabled (default) cost is one relaxed atomic
//!   load per site; instrumentation is provably behavior-neutral —
//!   `canonical_bytes` is byte-identical with the recorder off, on, or
//!   drained mid-run.
//!
//! [`export`] renders both halves: chrome-trace JSON (Perfetto-loadable)
//! for drained spans, prometheus text exposition for metric snapshots,
//! plus the [`export::validate_trace`] schema checker the CI `obs-smoke`
//! step runs.
//!
//! ## Naming scheme
//!
//! Dotted lowercase, `layer.quantity`: spans like `ooc.shard` and
//! `serve.request`; metrics like `extsort.spilled_runs_total` (counter),
//! `ooc.peak_resident_bytes` (gauge), `dynamic.apply_nanos` (histogram).
//! Counters end in `_total`; quantities carry a unit suffix
//! (`_nanos`, `_bytes`).
//!
//! ## Capturing a trace
//!
//! ```
//! use forest_obs::{recorder, Span};
//! let rec = recorder();
//! rec.enable();
//! {
//!     let _run = Span::enter("demo.run");
//!     // … instrumented work …
//! }
//! rec.disable();
//! let events = rec.drain();
//! forest_obs::export::validate_trace(&events).unwrap();
//! let json = forest_obs::export::chrome_trace_json(&events);
//! // write `json` to a file; open it in chrome://tracing or ui.perfetto.dev
//! assert!(json.contains("demo.run"));
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod metrics;
pub mod trace;

pub use clock::{ManualClock, MonotonicClock, Stopwatch};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyGauge, LazyHistogram, MetricId,
    MetricKind, MetricSnapshot, Registry,
};
pub use trace::{event, recorder, Phase, Recorder, Span, TraceEvent};
