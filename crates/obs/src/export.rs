//! Exporters: chrome-trace JSON and prometheus-style text exposition,
//! plus the schema checker CI's `obs-smoke` step runs over captured
//! traces.
//!
//! Both exporters are plain string builders — no serializer dependency,
//! per the offline-vendored policy — and both are deterministic given the
//! same events/snapshot (metric lines come out in registry name order,
//! trace lines in drain order).

use crate::metrics::{MetricDetail, MetricSnapshot, Registry};
use crate::trace::{Phase, TraceEvent};

/// Escapes a string for a JSON literal. Names here are static Rust string
/// literals (dotted lowercase), but escaping keeps the exporter total.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Renders drained events as a chrome-trace JSON document (the
/// `traceEvents` array format), loadable in `chrome://tracing` and
/// Perfetto. Timestamps are microseconds (`ts_nanos / 1000`, fractional);
/// all events share `pid` 1 and keep their recorded dense `tid`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        let ts_us = e.ts_nanos as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{}}}",
            json_escape(e.name),
            ph,
            ts_us,
            e.tid,
            e.span,
            e.parent
        ));
        if e.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Sanitizes a dotted metric name into a prometheus-legal one.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a registry snapshot in prometheus text exposition format.
/// Counters and gauges become single samples; histograms emit cumulative
/// `_bucket{le="2^i"}` samples plus `_sum` and `_count`.
pub fn prometheus_text(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshot {
        let name = prom_name(m.name);
        match &m.detail {
            MetricDetail::Counter => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", m.value));
            }
            MetricDetail::Gauge => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", m.value));
            }
            MetricDetail::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, &b) in h.buckets.iter().enumerate() {
                    if b == 0 {
                        continue;
                    }
                    cumulative += b;
                    // Bucket i ≥ 1 holds values < 2^i; bucket 0 holds zeros.
                    let le = if i == 0 { 1u128 } else { 1u128 << i };
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// A trace-validation failure (see [`validate_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A thread's timestamps went backwards.
    NonMonotoneTimestamp {
        /// The offending thread.
        tid: u32,
        /// Event index in the drained slice.
        at: usize,
    },
    /// An `End` arrived for a span that is not the innermost open one on
    /// its thread (or was never opened).
    UnbalancedEnd {
        /// The offending thread.
        tid: u32,
        /// Event index in the drained slice.
        at: usize,
    },
    /// A span was opened and never closed.
    UnclosedSpan {
        /// The offending thread.
        tid: u32,
        /// The dangling span id.
        span: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NonMonotoneTimestamp { tid, at } => {
                write!(f, "tid {tid}: timestamp decreased at event {at}")
            }
            TraceError::UnbalancedEnd { tid, at } => {
                write!(f, "tid {tid}: unbalanced span end at event {at}")
            }
            TraceError::UnclosedSpan { tid, span } => {
                write!(f, "tid {tid}: span {span} never closed")
            }
        }
    }
}

/// The schema checks CI's `obs-smoke` step enforces on a captured trace:
/// per-thread monotone non-decreasing timestamps, balanced begin/end
/// nesting per thread, and no dangling open spans.
pub fn validate_trace(events: &[TraceEvent]) -> Result<(), TraceError> {
    use std::collections::BTreeMap;
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    let mut stacks: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (at, e) in events.iter().enumerate() {
        if let Some(&prev) = last_ts.get(&e.tid) {
            if e.ts_nanos < prev {
                return Err(TraceError::NonMonotoneTimestamp { tid: e.tid, at });
            }
        }
        last_ts.insert(e.tid, e.ts_nanos);
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            Phase::Begin => stack.push(e.span),
            Phase::End => {
                if stack.pop() != Some(e.span) {
                    return Err(TraceError::UnbalancedEnd { tid: e.tid, at });
                }
            }
            Phase::Instant => {}
        }
    }
    for (tid, stack) in stacks {
        if let Some(&span) = stack.first() {
            return Err(TraceError::UnclosedSpan { tid, span });
        }
    }
    Ok(())
}

/// Convenience: validates that every `MetricId` in `ids` is registered in
/// `registry` (the obs-smoke schema checker's metric leg).
pub fn validate_metric_ids(
    registry: &Registry,
    ids: &[crate::metrics::MetricId],
) -> Result<(), String> {
    for id in ids {
        if !registry.contains(*id) {
            return Err(format!("metric id {} not registered", id.index()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn ev(name: &'static str, phase: Phase, ts: u64, tid: u32, span: u64) -> TraceEvent {
        TraceEvent {
            name,
            phase,
            ts_nanos: ts,
            tid,
            span,
            parent: 0,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            ev("a.b", Phase::Begin, 1_000, 0, 1),
            ev("a.c", Phase::Instant, 1_500, 0, 1),
            ev("a.b", Phase::End, 2_000, 0, 1),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn prometheus_shape() {
        let reg = Registry::new();
        let c = reg.counter("x.reqs_total");
        c.add(3);
        let h = reg.histogram("x.lat_nanos");
        h.observe(5);
        h.observe(0);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE x_lat_nanos histogram\n"));
        assert!(text.contains("x_lat_nanos_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("x_lat_nanos_bucket{le=\"8\"} 2\n"));
        assert!(text.contains("x_lat_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("x_lat_nanos_sum 5\n"));
        assert!(text.contains("x_lat_nanos_count 2\n"));
        assert!(text.contains("# TYPE x_reqs_total counter\nx_reqs_total 3\n"));
    }

    #[test]
    fn validator_accepts_balanced_and_rejects_broken() {
        let ok = vec![
            ev("s", Phase::Begin, 1, 0, 1),
            ev("t", Phase::Begin, 2, 0, 2),
            ev("t", Phase::End, 3, 0, 2),
            ev("s", Phase::End, 4, 0, 1),
        ];
        assert_eq!(validate_trace(&ok), Ok(()));

        let backwards = vec![ev("s", Phase::Begin, 5, 0, 1), ev("s", Phase::End, 4, 0, 1)];
        assert!(matches!(
            validate_trace(&backwards),
            Err(TraceError::NonMonotoneTimestamp { .. })
        ));

        let crossed = vec![
            ev("s", Phase::Begin, 1, 0, 1),
            ev("t", Phase::Begin, 2, 0, 2),
            ev("s", Phase::End, 3, 0, 1),
        ];
        assert!(matches!(
            validate_trace(&crossed),
            Err(TraceError::UnbalancedEnd { .. })
        ));

        let dangling = vec![ev("s", Phase::Begin, 1, 0, 1)];
        assert!(matches!(
            validate_trace(&dangling),
            Err(TraceError::UnclosedSpan { .. })
        ));

        // Interleaved threads validate independently.
        let threads = vec![
            ev("a", Phase::Begin, 10, 0, 1),
            ev("b", Phase::Begin, 1, 1, 2),
            ev("a", Phase::End, 11, 0, 1),
            ev("b", Phase::End, 2, 1, 2),
        ];
        assert_eq!(validate_trace(&threads), Ok(()));
    }

    #[test]
    fn metric_id_validation() {
        let reg = Registry::new();
        let c = reg.counter("v.count");
        assert!(validate_metric_ids(&reg, &[c.id()]).is_ok());
        let other = Registry::new();
        assert!(validate_metric_ids(&other, &[c.id()]).is_err());
    }
}
