//! The metrics registry: monotonic counters, gauges and log₂-bucketed
//! histograms addressed by [`MetricId`]s.
//!
//! Metrics are the *always-on* half of the observability substrate (spans
//! and events — the [`trace`](crate::trace) half — are gated behind the
//! [`Recorder`](crate::trace::Recorder)): an update is one or two relaxed
//! atomic operations, cheap enough to live on the dynamic decomposer's
//! per-update fast path. The registry replaces the bespoke stats structs
//! that used to be smeared across the workspace (`PipelineStats` timing
//! fields, `OocStats` residency accounting, `BuildStats` phase nanos, the
//! server's per-tenant counters): the structs remain as report-carried
//! values, but every quantity is now also a typed, queryable metric.
//!
//! Instrumentation sites address metrics through the `Lazy*` handles,
//! which register on first touch and cache the resolved handle — the hot
//! path never takes the registry lock:
//!
//! ```
//! use forest_obs::metrics::LazyCounter;
//! static SPILLS: LazyCounter = LazyCounter::new("extsort.spilled_runs_total");
//! SPILLS.add(3);
//! assert!(SPILLS.value() >= 3);
//! ```
//!
//! Naming scheme: `layer.quantity[_unit][_total]`, lowercase, dot-separated
//! layers — e.g. `ooc.peak_resident_bytes`, `dynamic.apply_nanos`,
//! `serve.requests_total`. Exports sanitize the dots for prometheus.
//!
//! Snapshots are deterministic: [`Registry::snapshot`] lists metrics in
//! name order (a `BTreeMap` index — never hash-iteration order), and
//! [`HistogramSnapshot::merge`] is associative and commutative, so
//! shard-local observations can be combined in any grouping (proptested).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Number of log₂ buckets a histogram carries: bucket 0 counts zero
/// observations, bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`, with
/// the top bucket absorbing everything above.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// What a metric is. The kind is fixed at registration; re-registering a
/// name with a different kind panics (an instrumentation bug, not input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing `u64`.
    Counter,
    /// Last-write-wins `u64`.
    Gauge,
    /// log₂-bucketed distribution with count and sum.
    Histogram,
}

/// A registry-scoped metric handle: the index of the metric in its
/// registry, stable for the registry's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// The raw index (dense from 0 in registration order).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// The shared storage behind one metric.
#[derive(Debug)]
struct MetricCore {
    name: &'static str,
    kind: MetricKind,
    id: MetricId,
    /// Counter/gauge value; histograms keep it 0.
    value: AtomicU64,
    /// Histogram state; `None` for counters and gauges.
    hist: Option<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log₂ bucket a value lands in.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let b = 64 - value.leading_zeros() as usize;
        b.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A monotonic counter handle (cheap to clone; all clones share storage).
#[derive(Clone, Debug)]
pub struct Counter(Arc<MetricCore>);

impl Counter {
    /// Adds `delta` (relaxed; counters only ever grow).
    pub fn add(&self, delta: u64) {
        self.0.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// This counter's id in its registry.
    pub fn id(&self) -> MetricId {
        self.0.id
    }
}

/// A gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<MetricCore>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher than the current
    /// reading (a high-watermark update, e.g. peak resident bytes).
    pub fn set_max(&self, value: u64) {
        self.0.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// This gauge's id in its registry.
    pub fn id(&self) -> MetricId {
        self.0.id
    }
}

/// A histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<MetricCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let h = self.0.hist.as_ref().expect("histogram core present");
        h.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (buckets are read
    /// individually; concurrent observers may land between reads — fine
    /// for observability).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.hist.as_ref().expect("histogram core present");
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
        }
    }

    /// This histogram's id in its registry.
    pub fn id(&self) -> MetricId {
        self.0.id
    }
}

/// An owned copy of a histogram's state — the mergeable value type
/// cross-thread and cross-shard aggregation works over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges `other` into `self`. Associative and commutative (bucket-wise
    /// addition), so any grouping of per-thread snapshots agrees —
    /// proptested in the crate tests.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.wrapping_add(*o);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's state at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: &'static str,
    /// The registered id.
    pub id: MetricId,
    /// Counter or gauge reading; for histograms, the sum.
    pub value: u64,
    /// The kind, with histogram detail.
    pub detail: MetricDetail,
}

/// Kind-specific snapshot detail.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricDetail {
    /// A counter reading.
    Counter,
    /// A gauge reading.
    Gauge,
    /// A histogram's full state (boxed: the bucket array dwarfs the
    /// dataless counter/gauge variants).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricSnapshot {
    /// The metric's kind.
    pub fn kind(&self) -> MetricKind {
        match self.detail {
            MetricDetail::Counter => MetricKind::Counter,
            MetricDetail::Gauge => MetricKind::Gauge,
            MetricDetail::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Vec<Arc<MetricCore>>,
    by_name: BTreeMap<&'static str, u32>,
}

/// A metrics registry. Instantiable (the server keeps per-tenant
/// instances); most instrumentation uses the process-global one through
/// the `Lazy*` handles.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(&self, name: &'static str, kind: MetricKind) -> Arc<MetricCore> {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&idx) = inner.by_name.get(name) {
            let existing = Arc::clone(&inner.metrics[idx as usize]);
            assert_eq!(
                existing.kind, kind,
                "metric `{name}` registered twice with different kinds"
            );
            return existing;
        }
        let idx = u32::try_from(inner.metrics.len()).expect("fewer than 2^32 metrics");
        let core = Arc::new(MetricCore {
            name,
            kind,
            id: MetricId(idx),
            value: AtomicU64::new(0),
            hist: matches!(kind, MetricKind::Histogram).then(HistogramCore::new),
        });
        inner.metrics.push(Arc::clone(&core));
        inner.by_name.insert(name, idx);
        core
    }

    /// Registers (or finds) a counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.register(name, MetricKind::Counter))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.register(name, MetricKind::Gauge))
    }

    /// Registers (or finds) a histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.register(name, MetricKind::Histogram))
    }

    /// `true` if `id` names a registered metric.
    pub fn contains(&self, id: MetricId) -> bool {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        id.index() < inner.metrics.len()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        inner.metrics.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value of the metric named `name`, if registered (counter/gauge
    /// reading; histogram sum).
    pub fn value_of(&self, name: &str) -> Option<u64> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let &idx = inner.by_name.get(name)?;
        let core = &inner.metrics[idx as usize];
        Some(match &core.hist {
            Some(h) => h.sum.load(Ordering::Relaxed),
            None => core.value.load(Ordering::Relaxed),
        })
    }

    /// Every metric's current state, in **name order** (deterministic — the
    /// index is a `BTreeMap`, never a hash map).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        inner
            .by_name
            .values()
            .map(|&idx| {
                let core = &inner.metrics[idx as usize];
                match &core.hist {
                    Some(h) => {
                        let snap = HistogramSnapshot {
                            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        };
                        MetricSnapshot {
                            name: core.name,
                            id: core.id,
                            value: snap.sum,
                            detail: MetricDetail::Histogram(Box::new(snap)),
                        }
                    }
                    None => MetricSnapshot {
                        name: core.name,
                        id: core.id,
                        value: core.value.load(Ordering::Relaxed),
                        detail: match core.kind {
                            MetricKind::Counter => MetricDetail::Counter,
                            _ => MetricDetail::Gauge,
                        },
                    },
                }
            })
            .collect()
    }
}

/// A lazily-registered counter for `static` instrumentation sites: the
/// first touch registers against the global registry; after that the hot
/// path is one `OnceLock` load plus the atomic add.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// A handle for `name` (registers on first use).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The resolved handle.
    pub fn get(&self) -> &Counter {
        self.cell
            .get_or_init(|| Registry::global().counter(self.name))
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.get().add(delta);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.get().value()
    }

    /// The registered id.
    pub fn id(&self) -> MetricId {
        self.get().id()
    }
}

/// [`LazyCounter`], for gauges.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// A handle for `name` (registers on first use).
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The resolved handle.
    pub fn get(&self) -> &Gauge {
        self.cell
            .get_or_init(|| Registry::global().gauge(self.name))
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.get().set(value);
    }

    /// High-watermark update.
    pub fn set_max(&self, value: u64) {
        self.get().set_max(value);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.get().value()
    }

    /// The registered id.
    pub fn id(&self) -> MetricId {
        self.get().id()
    }
}

/// [`LazyCounter`], for histograms.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// A handle for `name` (registers on first use).
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The resolved handle.
    pub fn get(&self) -> &Histogram {
        self.cell
            .get_or_init(|| Registry::global().histogram(self.name))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.get().observe(value);
    }

    /// The registered id.
    pub fn id(&self) -> MetricId {
        self.get().id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = Registry::new();
        let a = reg.counter("t.counter");
        let b = reg.counter("t.counter");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        assert_eq!(a.id(), b.id());
        let g = reg.gauge("t.gauge");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.value(), 7);
        g.set_max(11);
        assert_eq!(g.value(), 11);
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(a.id()));
        assert_eq!(reg.value_of("t.counter"), Some(5));
        assert_eq!(reg.value_of("t.missing"), None);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = Registry::new();
        reg.counter("z.last");
        reg.counter("a.first");
        reg.histogram("m.mid");
        let names: Vec<_> = reg.snapshot().iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let reg = Registry::new();
        let h = reg.histogram("t.hist");
        for v in [0u64, 1, 3, 1024] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1028);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[11], 1);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("t.conflict");
        reg.gauge("t.conflict");
    }

    #[test]
    fn lazy_handles_share_the_global_registry() {
        static C: LazyCounter = LazyCounter::new("test.metrics.lazy_total");
        C.inc();
        C.add(4);
        assert!(C.value() >= 5);
        assert!(Registry::global().contains(C.id()));
        assert_eq!(
            Registry::global().value_of("test.metrics.lazy_total"),
            Some(C.value())
        );
    }
}
