//! The span/event tracing core.
//!
//! Tracing is the *opt-in* half of the substrate (metrics are always on).
//! Everything is gated behind the process [`Recorder`]: while it is
//! disabled — the default — [`Span::enter`] is a single relaxed atomic
//! load returning an inert guard, and [`event`] is the same load plus an
//! early return. No allocation, no clock read, no thread-local touch.
//! Because instrumentation neither consumes RNG state nor reorders work,
//! `canonical_bytes` of every decomposition is byte-identical with the
//! recorder disabled, enabled, or drained mid-run (proptested in the
//! workspace `tests/observability.rs`).
//!
//! When recording, each thread appends to a thread-local buffer; the
//! buffer is flushed into a lock-free global sink (a Treiber stack of
//! boxed chunks) whenever the thread's span stack empties, and again when
//! the thread exits. [`Recorder::drain`] pops the whole stack and restores
//! per-thread chronological order, ready for
//! [`chrome_trace_json`](crate::export::chrome_trace_json).
//!
//! ```
//! use forest_obs::trace::{recorder, Span};
//! let rec = recorder();
//! rec.enable();
//! {
//!     let _outer = Span::enter("demo.outer");
//!     let _inner = Span::enter("demo.inner");
//! }
//! let events = rec.drain();
//! assert!(events.len() >= 4); // two begins, two ends
//! rec.disable();
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::clock;

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event.
    Instant,
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The span or event name (static — instrumentation sites name
    /// themselves with literals, `layer.operation` dotted lowercase).
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Timestamp from [`clock::now_nanos`] (nanoseconds since the process
    /// anchor; deterministic under a `ManualClock`).
    pub ts_nanos: u64,
    /// A small dense thread id (assigned in first-record order, not the
    /// OS tid).
    pub tid: u32,
    /// The span this event belongs to (0 for instants outside any span).
    pub span: u64,
    /// The enclosing span at the time of recording (0 = root).
    pub parent: u64,
}

/// Next span id; 0 is reserved for "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Next dense thread id.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Whether the process recorder is recording.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Head of the Treiber stack of flushed event chunks.
static SINK_HEAD: AtomicPtr<Chunk> = AtomicPtr::new(std::ptr::null_mut());

struct Chunk {
    events: Vec<TraceEvent>,
    next: *mut Chunk,
}

/// Pushes a chunk of events onto the global sink (lock-free).
fn sink_push(events: Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    let chunk = Box::into_raw(Box::new(Chunk {
        events,
        next: std::ptr::null_mut(),
    }));
    let mut head = SINK_HEAD.load(Ordering::Acquire);
    loop {
        // SAFETY: `chunk` came from Box::into_raw above and is not yet
        // shared; writing its `next` field before the CAS publishes it is
        // the standard Treiber push.
        unsafe { (*chunk).next = head };
        match SINK_HEAD.compare_exchange_weak(head, chunk, Ordering::Release, Ordering::Acquire) {
            Ok(_) => return,
            Err(h) => head = h,
        }
    }
}

/// Pops the entire sink and returns the chunks oldest-first.
fn sink_drain() -> Vec<Vec<TraceEvent>> {
    let mut head = SINK_HEAD.swap(std::ptr::null_mut(), Ordering::AcqRel);
    let mut chunks = Vec::new();
    while !head.is_null() {
        // SAFETY: the swap above made this thread the sole owner of the
        // detached list; every node was created by Box::into_raw in
        // sink_push and is reclaimed exactly once here.
        let boxed = unsafe { Box::from_raw(head) };
        head = boxed.next;
        chunks.push(boxed.events);
    }
    // The stack is LIFO over push order; reverse to oldest-first so each
    // thread's events come out chronologically.
    chunks.reverse();
    chunks
}

struct ThreadBuf {
    tid: u32,
    /// Open span ids, innermost last.
    stack: Vec<u64>,
    buf: Vec<TraceEvent>,
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        ThreadBuf {
            tid: u32::try_from(tid).unwrap_or(u32::MAX),
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            sink_push(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// The process recorder handle: the on/off gate plus the drain side.
#[derive(Debug)]
pub struct Recorder(());

/// The process recorder.
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder(()))
}

impl Recorder {
    /// `true` while recording.
    pub fn is_enabled(&self) -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Starts recording. Spans entered before this call stay unrecorded
    /// (their guards are inert — a guard never records an `End` without
    /// its `Begin`).
    pub fn enable(&self) {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Stops recording. Already-buffered events remain drainable.
    pub fn disable(&self) {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Flushes the current thread's buffer and drains every flushed chunk,
    /// preserving per-thread chronological order. Other recording threads
    /// should be quiescent (joined) for a complete picture — chunks they
    /// have not flushed yet are not visible.
    pub fn drain(&self) -> Vec<TraceEvent> {
        THREAD_BUF.with(|b| b.borrow_mut().flush());
        let mut out = Vec::new();
        for chunk in sink_drain() {
            out.extend(chunk);
        }
        out
    }

    /// Drops everything recorded so far.
    pub fn clear(&self) {
        let _ = self.drain();
    }
}

/// An RAII span guard. Entering records a `Begin` (when the recorder is
/// enabled), dropping records the matching `End`. The disabled path is one
/// atomic load and the guard is inert.
#[must_use = "a span measures the scope of its guard"]
#[derive(Debug)]
pub struct Span {
    /// 0 for inert guards.
    id: u64,
    name: &'static str,
}

impl Span {
    /// Opens a span named `name` (a `'static` literal, dotted lowercase).
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !ENABLED.load(Ordering::Relaxed) {
            return Span { id: 0, name };
        }
        Span::enter_recorded(name)
    }

    #[cold]
    fn enter_recorded(name: &'static str) -> Span {
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let ts = clock::now_nanos();
        THREAD_BUF.with(|b| {
            let mut b = b.borrow_mut();
            let parent = b.stack.last().copied().unwrap_or(0);
            let tid = b.tid;
            b.buf.push(TraceEvent {
                name,
                phase: Phase::Begin,
                ts_nanos: ts,
                tid,
                span: id,
                parent,
            });
            b.stack.push(id);
        });
        Span { id, name }
    }

    /// The span id (0 when the guard is inert).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let ts = clock::now_nanos();
        THREAD_BUF.with(|b| {
            let mut b = b.borrow_mut();
            // Pop through any abandoned inner ids (mem::forget of an inner
            // guard) so the stack stays consistent.
            while let Some(top) = b.stack.pop() {
                if top == self.id {
                    break;
                }
            }
            let parent = b.stack.last().copied().unwrap_or(0);
            let tid = b.tid;
            b.buf.push(TraceEvent {
                name: self.name,
                phase: Phase::End,
                ts_nanos: ts,
                tid,
                span: self.id,
                parent,
            });
            if b.stack.is_empty() {
                b.flush();
            }
        });
    }
}

/// Records a point-in-time event (a chrome-trace `i` phase). A no-op
/// unless the recorder is enabled.
#[inline]
pub fn event(name: &'static str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    event_recorded(name);
}

#[cold]
fn event_recorded(name: &'static str) {
    let ts = clock::now_nanos();
    THREAD_BUF.with(|b| {
        let mut b = b.borrow_mut();
        let parent = b.stack.last().copied().unwrap_or(0);
        let tid = b.tid;
        b.buf.push(TraceEvent {
            name,
            phase: Phase::Instant,
            ts_nanos: ts,
            tid,
            span: parent,
            parent,
        });
        if b.stack.is_empty() {
            b.flush();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder is process-global; serialize the tests that toggle it.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = TRACE_LOCK.lock().unwrap();
        let rec = recorder();
        rec.disable();
        rec.clear();
        {
            let s = Span::enter("test.disabled");
            assert_eq!(s.id(), 0);
            event("test.disabled.event");
        }
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _guard = TRACE_LOCK.lock().unwrap();
        let rec = recorder();
        rec.clear();
        rec.enable();
        let (outer_id, inner_id);
        {
            let outer = Span::enter("test.outer");
            outer_id = outer.id();
            {
                let inner = Span::enter("test.inner");
                inner_id = inner.id();
                event("test.tick");
            }
        }
        rec.disable();
        let events = rec.drain();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[0].span, outer_id);
        assert_eq!(events[0].parent, 0);
        assert_eq!(events[1].span, inner_id);
        assert_eq!(events[1].parent, outer_id);
        assert_eq!(events[2].phase, Phase::Instant);
        assert_eq!(events[2].parent, inner_id);
        assert_eq!(events[3].phase, Phase::End);
        assert_eq!(events[3].span, inner_id);
        assert_eq!(events[4].span, outer_id);
        // Timestamps are per-thread monotone.
        for w in events.windows(2) {
            assert!(w[1].ts_nanos >= w[0].ts_nanos);
        }
    }

    #[test]
    fn cross_thread_events_carry_distinct_tids() {
        let _guard = TRACE_LOCK.lock().unwrap();
        let rec = recorder();
        rec.clear();
        rec.enable();
        let main_span = Span::enter("test.main");
        let handle = std::thread::spawn(|| {
            let _s = Span::enter("test.worker");
        });
        handle.join().unwrap();
        drop(main_span);
        rec.disable();
        let events = rec.drain();
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two threads, two tids: {events:?}");
    }
}
