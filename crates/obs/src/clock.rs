//! The workspace's **single wall-clock module**.
//!
//! Every elapsed-time measurement in the pipeline — extsort phase timings,
//! Algorithm 2 ball BFS nanos, out-of-core phase splits, dynamic per-update
//! cost, facade wall-clocks, trace timestamps, bench medians — reads the
//! clock through here. No other first-party module may call
//! `Instant::now`/`SystemTime::now` (enforced by forest-lint FL005; this
//! file carries the one checked-in allow entry). Centralizing the read has
//! two payoffs:
//!
//! * the byte-determinism contract is auditable: timings flow into stats
//!   ledgers and traces, which are excluded from `canonical_bytes`, and the
//!   lint proves nothing else can sneak a clock read into an artifact path;
//! * tests can swap in a deterministic [`ManualClock`] and drive "time"
//!   explicitly, so timing-derived observability (histograms, span
//!   durations) is testable to the nanosecond.
//!
//! Readings are **monotonic nanoseconds anchored at the first read** of the
//! process (so they fit comfortably in a `u64` and are directly usable as
//! chrome-trace timestamps); they are never a calendar time.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const MODE_MONOTONIC: u8 = 0;
const MODE_MANUAL: u8 = 1;

/// Which source [`now_nanos`] reads: the real monotonic clock (default) or
/// the manual test clock.
static MODE: AtomicU8 = AtomicU8::new(MODE_MONOTONIC);

/// The manual clock's current reading, nanoseconds.
static MANUAL_NANOS: AtomicU64 = AtomicU64::new(0);

/// The process anchor: all monotonic readings are relative to this instant.
fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process anchor (first clock read), from whichever
/// source is installed. Monotonic: never decreases under the real clock;
/// under a [`ManualClock`] it reads exactly what the test set.
pub fn now_nanos() -> u64 {
    match MODE.load(Ordering::Relaxed) {
        MODE_MANUAL => MANUAL_NANOS.load(Ordering::Relaxed),
        _ => MonotonicClock.now_nanos(),
    }
}

/// The real clock: monotonic nanoseconds anchored at the first read. This
/// is the only first-party type that touches `std::time::Instant`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl MonotonicClock {
    /// Nanoseconds since the process anchor.
    pub fn now_nanos(&self) -> u64 {
        let a = *anchor();
        let d = Instant::now().saturating_duration_since(a);
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock. While a handle is alive, [`now_nanos`] (and
/// therefore every [`Stopwatch`], trace timestamp and timing histogram in
/// the process) reads the value the test set — no real time passes.
///
/// Install with [`ManualClock::install`]; dropping the handle restores the
/// monotonic clock. Tests sharing a process must serialize installs (the
/// clock is process-global by design — that is the whole point).
#[derive(Debug)]
pub struct ManualClock(());

impl ManualClock {
    /// Switches the process clock to manual mode, starting at 0 ns.
    pub fn install() -> ManualClock {
        MANUAL_NANOS.store(0, Ordering::Relaxed);
        MODE.store(MODE_MANUAL, Ordering::Relaxed);
        ManualClock(())
    }

    /// Sets the manual reading.
    pub fn set(&self, nanos: u64) {
        MANUAL_NANOS.store(nanos, Ordering::Relaxed);
    }

    /// Advances the manual reading.
    pub fn advance(&self, nanos: u64) {
        MANUAL_NANOS.fetch_add(nanos, Ordering::Relaxed);
    }

    /// The current manual reading.
    pub fn now_nanos(&self) -> u64 {
        MANUAL_NANOS.load(Ordering::Relaxed)
    }
}

impl Drop for ManualClock {
    fn drop(&mut self) {
        MODE.store(MODE_MONOTONIC, Ordering::Relaxed);
    }
}

/// An elapsed-time measurement: the drop-in replacement for the
/// `let start = Instant::now(); … start.elapsed()` idiom at every
/// instrumentation site.
///
/// ```
/// let sw = forest_obs::clock::Stopwatch::start();
/// // … work …
/// let _nanos: u64 = sw.elapsed_nanos();
/// let _dur: std::time::Duration = sw.elapsed();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start_nanos: u64,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start_nanos: now_nanos(),
        }
    }

    /// Nanoseconds since [`start`](Stopwatch::start). Saturates at 0 if a
    /// manual clock was set backwards.
    pub fn elapsed_nanos(&self) -> u64 {
        now_nanos().saturating_sub(self.start_nanos)
    }

    /// [`elapsed_nanos`](Stopwatch::elapsed_nanos) as a `Duration`.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos())
    }

    /// The reading this stopwatch started at (a trace timestamp).
    pub fn started_at_nanos(&self) -> u64 {
        self.start_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that install the process-global manual clock.
    static CLOCK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn monotonic_never_decreases() {
        let _guard = CLOCK_LOCK.lock().unwrap();
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_drives_stopwatch() {
        let _guard = CLOCK_LOCK.lock().unwrap();
        let clock = ManualClock::install();
        let sw = Stopwatch::start();
        assert_eq!(sw.elapsed_nanos(), 0);
        clock.advance(1_500);
        assert_eq!(sw.elapsed_nanos(), 1_500);
        assert_eq!(sw.elapsed(), Duration::from_nanos(1_500));
        clock.set(10_000);
        assert_eq!(sw.elapsed_nanos(), 10_000);
        clock.set(0);
        assert_eq!(sw.elapsed_nanos(), 0, "backwards set saturates");
        drop(clock);
        // Restored: real time flows again.
        let a = now_nanos();
        assert!(now_nanos() >= a);
    }
}
