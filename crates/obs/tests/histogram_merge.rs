//! Property tests for the mergeable-histogram contract: cross-thread (and
//! cross-shard) aggregation must not depend on how the per-thread
//! snapshots are grouped or ordered.

use forest_obs::metrics::{bucket_of, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let reg = Registry::new();
    let h = reg.histogram("t.h");
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

/// A strategy for a 0..32-element vector of full-range u64 observations.
fn obs_vec() -> impl Strategy<Value = Vec<u64>> {
    (0..32usize).prop_flat_map(|n| proptest::collection::vec(0..u64::MAX, n))
}

proptest! {
    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative((a, b, c) in (obs_vec(), obs_vec(), obs_vec())) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// merge is commutative and agrees with observing the concatenation.
    #[test]
    fn merge_commutes_and_matches_concat((a, b) in (obs_vec(), obs_vec())) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let direct = snapshot_of(&concat);
        prop_assert_eq!(ab, direct);
    }

    /// Every value lands in exactly one valid bucket, and the bucket
    /// bounds are honored: bucket 0 ⇔ value 0, bucket i ⇔ [2^(i-1), 2^i).
    #[test]
    fn bucketing_respects_bounds(v in 0..u64::MAX) {
        let b = bucket_of(v);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        if v == 0 {
            prop_assert_eq!(b, 0);
        } else if b < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(v >= 1u64 << (b - 1));
            prop_assert!(v < 1u64 << b);
        } else {
            prop_assert!(v >= 1u64 << (HISTOGRAM_BUCKETS - 2));
        }
    }
}

#[test]
fn concurrent_observers_sum_exactly() {
    let reg = Registry::new();
    let h = reg.histogram("t.concurrent");
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..1_000u64 {
                    h.observe(t * 1_000 + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, 4_000);
    assert_eq!(snap.sum, (0..4_000u64).sum::<u64>());
    assert_eq!(snap.buckets.iter().sum::<u64>(), 4_000);
}
